"""Sparse paged byte-addressable memory.

The guest address space is 32 bits but programs touch only a few
segments (text, data, stack), so storage is a dictionary of fixed-size
pages allocated on first touch.  All multi-byte accesses are
little-endian and must be naturally aligned, which catches workload
bugs early (the PISA model traps on unaligned accesses too).

Besides the scalar accessors there is a vectorized word-run layer
(:meth:`SparseMemory.read_words` / :meth:`SparseMemory.write_words`):
contiguous aligned word runs move through page-slice copies (numpy
``frombuffer``/``tobytes`` above a small crossover, a plain loop
below it — the crossover is measured by ``scripts/bench_host_ops.py``).
The block-compiled execution tier (:mod:`repro.emulator.blocks`) batches
adjacent load/store runs through it, and bulk image loading
(:meth:`write_block`) uses the same page-slice idiom.
"""

from __future__ import annotations

import numpy as np

from repro.harness.errors import MemoryFault

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

#: Word-run length at which ``read_words``/``write_words`` switch from a
#: plain Python loop to one numpy kernel per page span.  Below this the
#: ~1 µs array-creation overhead exceeds the per-word saving (see the
#: host-op cost table in docs/performance.md).
NUMPY_WORDS_MIN = 16


class AlignmentError(MemoryFault):
    """Raised on a non-naturally-aligned multi-byte access."""


class SparseMemory:
    """Byte-addressable sparse memory with on-demand zero-filled pages."""

    __slots__ = ("_pages",)

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        num = addr >> PAGE_SHIFT
        page = self._pages.get(num)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[num] = page
        return page

    # ------------------------------------------------------------------ reads

    def read_byte(self, addr: int) -> int:
        addr &= 0xFFFFFFFF
        page = self._pages.get(addr >> PAGE_SHIFT)
        return page[addr & PAGE_MASK] if page is not None else 0

    def read_half(self, addr: int) -> int:
        addr &= 0xFFFFFFFF
        if addr & 1:
            raise AlignmentError(f"unaligned halfword read at {addr:#x}")
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        off = addr & PAGE_MASK
        return page[off] | (page[off + 1] << 8)

    def read_word(self, addr: int) -> int:
        addr &= 0xFFFFFFFF
        if addr & 3:
            raise AlignmentError(f"unaligned word read at {addr:#x}")
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        off = addr & PAGE_MASK
        return page[off] | (page[off + 1] << 8) | (page[off + 2] << 16) | (page[off + 3] << 24)

    # ----------------------------------------------------------------- writes

    def write_byte(self, addr: int, value: int) -> None:
        addr &= 0xFFFFFFFF
        self._page(addr)[addr & PAGE_MASK] = value & 0xFF

    def write_half(self, addr: int, value: int) -> None:
        addr &= 0xFFFFFFFF
        if addr & 1:
            raise AlignmentError(f"unaligned halfword write at {addr:#x}")
        page = self._page(addr)
        off = addr & PAGE_MASK
        page[off] = value & 0xFF
        page[off + 1] = (value >> 8) & 0xFF

    def write_word(self, addr: int, value: int) -> None:
        addr &= 0xFFFFFFFF
        if addr & 3:
            raise AlignmentError(f"unaligned word write at {addr:#x}")
        page = self._page(addr)
        off = addr & PAGE_MASK
        page[off] = value & 0xFF
        page[off + 1] = (value >> 8) & 0xFF
        page[off + 2] = (value >> 16) & 0xFF
        page[off + 3] = (value >> 24) & 0xFF

    # ------------------------------------------------------------ word runs

    def read_words(self, addr: int, count: int) -> list[int]:
        """Read *count* little-endian words starting at aligned *addr*.

        Semantically identical to ``[read_word(addr + 4*i) ...]`` —
        unmapped pages read as zero, a misaligned start raises
        :class:`AlignmentError` before any access — but each page span
        is decoded in one pass (numpy ``frombuffer`` above
        ``NUMPY_WORDS_MIN`` words, a plain loop below it).
        """
        addr &= 0xFFFFFFFF
        if addr & 3:
            raise AlignmentError(f"unaligned word read at {addr:#x}")
        out: list[int] = []
        pages = self._pages
        while count > 0:
            off = addr & PAGE_MASK
            span = min(count, (PAGE_SIZE - off) >> 2)
            page = pages.get(addr >> PAGE_SHIFT)
            if page is None:
                out.extend([0] * span)
            elif span >= NUMPY_WORDS_MIN:
                out.extend(np.frombuffer(bytes(page[off : off + 4 * span]), dtype="<u4").tolist())
            else:
                for i in range(off, off + 4 * span, 4):
                    out.append(
                        page[i] | (page[i + 1] << 8) | (page[i + 2] << 16) | (page[i + 3] << 24)
                    )
            addr = (addr + 4 * span) & 0xFFFFFFFF
            count -= span
        return out

    def write_words(self, addr: int, values) -> None:
        """Write a sequence of words starting at aligned *addr*.

        Semantically identical to ``write_word(addr + 4*i, v)`` in
        order, with the same alignment trap, but one page-slice store
        per span (numpy ``tobytes`` above ``NUMPY_WORDS_MIN`` words).
        """
        addr &= 0xFFFFFFFF
        if addr & 3:
            raise AlignmentError(f"unaligned word write at {addr:#x}")
        i = 0
        n = len(values)
        while i < n:
            off = addr & PAGE_MASK
            span = min(n - i, (PAGE_SIZE - off) >> 2)
            page = self._page(addr)
            if span >= NUMPY_WORDS_MIN:
                arr = np.asarray(values[i : i + span], dtype=np.uint64) & 0xFFFFFFFF
                page[off : off + 4 * span] = arr.astype("<u4").tobytes()
            else:
                for v in values[i : i + span]:
                    page[off] = v & 0xFF
                    page[off + 1] = (v >> 8) & 0xFF
                    page[off + 2] = (v >> 16) & 0xFF
                    page[off + 3] = (v >> 24) & 0xFF
                    off += 4
            addr = (addr + 4 * span) & 0xFFFFFFFF
            i += span

    # ------------------------------------------------------------------ bulk

    def write_block(self, addr: int, payload: bytes) -> None:
        """Copy *payload* into memory starting at *addr* (any alignment)."""
        i = 0
        n = len(payload)
        while i < n:
            a = (addr + i) & 0xFFFFFFFF
            off = a & PAGE_MASK
            span = min(n - i, PAGE_SIZE - off)
            self._page(a)[off : off + span] = payload[i : i + span]
            i += span

    def read_block(self, addr: int, size: int) -> bytes:
        """Read *size* bytes starting at *addr*."""
        out = bytearray()
        i = 0
        while i < size:
            a = (addr + i) & 0xFFFFFFFF
            off = a & PAGE_MASK
            span = min(size - i, PAGE_SIZE - off)
            page = self._pages.get(a >> PAGE_SHIFT)
            if page is None:
                out.extend(b"\x00" * span)
            else:
                out.extend(page[off : off + span])
            i += span
        return bytes(out)

    def read_cstring(self, addr: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (used by the print-string syscall)."""
        out = bytearray()
        for i in range(limit):
            b = self.read_byte(addr + i)
            if b == 0:
                break
            out.append(b)
        return bytes(out)

    @property
    def resident_pages(self) -> int:
        """Number of pages allocated so far (footprint diagnostics)."""
        return len(self._pages)
