"""Sparse paged byte-addressable memory.

The guest address space is 32 bits but programs touch only a few
segments (text, data, stack), so storage is a dictionary of fixed-size
pages allocated on first touch.  All multi-byte accesses are
little-endian and must be naturally aligned, which catches workload
bugs early (the PISA model traps on unaligned accesses too).
"""

from __future__ import annotations

from repro.harness.errors import MemoryFault

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class AlignmentError(MemoryFault):
    """Raised on a non-naturally-aligned multi-byte access."""


class SparseMemory:
    """Byte-addressable sparse memory with on-demand zero-filled pages."""

    __slots__ = ("_pages",)

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        num = addr >> PAGE_SHIFT
        page = self._pages.get(num)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[num] = page
        return page

    # ------------------------------------------------------------------ reads

    def read_byte(self, addr: int) -> int:
        addr &= 0xFFFFFFFF
        page = self._pages.get(addr >> PAGE_SHIFT)
        return page[addr & PAGE_MASK] if page is not None else 0

    def read_half(self, addr: int) -> int:
        addr &= 0xFFFFFFFF
        if addr & 1:
            raise AlignmentError(f"unaligned halfword read at {addr:#x}")
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        off = addr & PAGE_MASK
        return page[off] | (page[off + 1] << 8)

    def read_word(self, addr: int) -> int:
        addr &= 0xFFFFFFFF
        if addr & 3:
            raise AlignmentError(f"unaligned word read at {addr:#x}")
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        off = addr & PAGE_MASK
        return page[off] | (page[off + 1] << 8) | (page[off + 2] << 16) | (page[off + 3] << 24)

    # ----------------------------------------------------------------- writes

    def write_byte(self, addr: int, value: int) -> None:
        addr &= 0xFFFFFFFF
        self._page(addr)[addr & PAGE_MASK] = value & 0xFF

    def write_half(self, addr: int, value: int) -> None:
        addr &= 0xFFFFFFFF
        if addr & 1:
            raise AlignmentError(f"unaligned halfword write at {addr:#x}")
        page = self._page(addr)
        off = addr & PAGE_MASK
        page[off] = value & 0xFF
        page[off + 1] = (value >> 8) & 0xFF

    def write_word(self, addr: int, value: int) -> None:
        addr &= 0xFFFFFFFF
        if addr & 3:
            raise AlignmentError(f"unaligned word write at {addr:#x}")
        page = self._page(addr)
        off = addr & PAGE_MASK
        page[off] = value & 0xFF
        page[off + 1] = (value >> 8) & 0xFF
        page[off + 2] = (value >> 16) & 0xFF
        page[off + 3] = (value >> 24) & 0xFF

    # ------------------------------------------------------------------ bulk

    def write_block(self, addr: int, payload: bytes) -> None:
        """Copy *payload* into memory starting at *addr* (any alignment)."""
        for i, b in enumerate(payload):
            a = (addr + i) & 0xFFFFFFFF
            self._page(a)[a & PAGE_MASK] = b

    def read_block(self, addr: int, size: int) -> bytes:
        """Read *size* bytes starting at *addr*."""
        return bytes(self.read_byte(addr + i) for i in range(size))

    def read_cstring(self, addr: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (used by the print-string syscall)."""
        out = bytearray()
        for i in range(limit):
            b = self.read_byte(addr + i)
            if b == 0:
                break
            out.append(b)
        return bytes(out)

    @property
    def resident_pages(self) -> int:
        """Number of pages allocated so far (footprint diagnostics)."""
        return len(self._pages)
