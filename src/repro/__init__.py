"""repro — reproduction of "Exploiting Partial Operand Knowledge"
(Mestan & Lipasti, ICPP 2003).

Top-level convenience surface; the subpackages are the real API:

* :mod:`repro.isa` — PISA-like ISA, assembler, disassembler
* :mod:`repro.emulator` — functional emulator and trace generation
* :mod:`repro.workloads` — the 11-benchmark synthetic suite
* :mod:`repro.memsys` — caches, partial tag matching, hierarchy
* :mod:`repro.branch` — gshare/BTB/RAS and early branch resolution
* :mod:`repro.lsq` — load/store queue and partial disambiguation
* :mod:`repro.core` — bit slicing, dependence rules, configurations
* :mod:`repro.timing` — the out-of-order timing simulator
* :mod:`repro.characterization` — the Figure 2/4/6 studies
* :mod:`repro.experiments` — per-table/figure regeneration + CLI
"""

from repro.core.config import (
    Features,
    MachineConfig,
    baseline_config,
    bitslice_config,
    simple_pipeline_config,
)
from repro.emulator.machine import Machine
from repro.isa.assembler import Program, assemble
from repro.timing.simulator import TimingSimulator, simulate
from repro.workloads import BENCHMARK_NAMES, get_workload

__version__ = "1.0.0"

__all__ = [
    "BENCHMARK_NAMES",
    "Features",
    "Machine",
    "MachineConfig",
    "Program",
    "TimingSimulator",
    "__version__",
    "assemble",
    "baseline_config",
    "bitslice_config",
    "get_workload",
    "simple_pipeline_config",
    "simulate",
]
