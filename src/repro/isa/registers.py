"""Register file conventions for the PISA-like ISA.

Thirty-two 32-bit general purpose registers with the standard MIPS
calling-convention aliases, plus the HI/LO multiply/divide registers.
Register ``$0`` (``$zero``) is hardwired to zero.
"""

from __future__ import annotations

#: Canonical ABI names for registers 0..31, in numeric order.
REG_NAMES: tuple[str, ...] = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

#: Number of general-purpose registers.
NUM_REGS: int = 32

#: Indices of the HI and LO special registers in the extended register
#: file used by the emulator (they sit just past the 32 GPRs).
HI: int = 32
LO: int = 33

#: First extended index of the floating-point register file ($f0..$f31
#: store raw single-precision bit patterns).
FP_BASE: int = 34

#: Extended index of the FP condition flag (set by c.eq.s/c.lt.s/c.le.s,
#: read by bc1t/bc1f).
FCC: int = FP_BASE + 32

#: Total extended register file size (GPRs + HI/LO + FPRs + FCC).
NUM_EXT_REGS: int = FCC + 1

_NAME_TO_NUM: dict[str, int] = {name: i for i, name in enumerate(REG_NAMES)}
_NAME_TO_NUM.update({f"r{i}": i for i in range(NUM_REGS)})
_NAME_TO_NUM.update({str(i): i for i in range(NUM_REGS)})
_NAME_TO_NUM["s8"] = 30  # $fp alias


def reg_num(name: str) -> int:
    """Parse a register reference (``$t0``, ``$8``, ``t0``, ``r8``) to its number.

    Raises:
        ValueError: if the name does not denote a register.
    """
    key = name.strip().lstrip("$").lower()
    try:
        return _NAME_TO_NUM[key]
    except KeyError:
        raise ValueError(f"unknown register {name!r}") from None


def reg_name(num: int) -> str:
    """Return the canonical ``$``-prefixed ABI name for register *num*."""
    if not 0 <= num < NUM_REGS:
        raise ValueError(f"register number out of range: {num}")
    return f"${REG_NAMES[num]}"


def fp_reg_num(name: str) -> int:
    """Parse an FP register reference (``$f0``..``$f31``) to 0..31."""
    key = name.strip().lstrip("$").lower()
    if key.startswith("f"):
        try:
            num = int(key[1:])
        except ValueError:
            raise ValueError(f"unknown FP register {name!r}") from None
        if 0 <= num < 32:
            return num
    raise ValueError(f"unknown FP register {name!r}")


def fp_reg_name(num: int) -> str:
    """Return the ``$f``-prefixed name for FP register *num*."""
    if not 0 <= num < 32:
        raise ValueError(f"FP register number out of range: {num}")
    return f"$f{num}"
