"""Operation classification for bit-slice scheduling (paper Figure 8).

The bit-sliced microarchitecture tracks dependences at slice
granularity.  How slices of one instruction depend on each other is a
property of the operation:

* :attr:`OpClass.LOGIC` — no inter-slice communication; slices may
  execute out of order (``and``, ``or``, ``xor``, ``nor``, ``lui``,
  immediate forms).
* :attr:`OpClass.ARITH` — a carry ripples from the low slice upward;
  slice *k* additionally depends on the instruction's own slice *k-1*
  (``add``/``sub`` families, and address generation for loads/stores).
* :attr:`OpClass.SHIFT_LEFT` / :attr:`OpClass.SHIFT_RIGHT` — shifted-in
  bits cross slice boundaries: left shifts propagate low→high like a
  carry, right shifts high→low (paper §6: "Shift instructions require
  that more than just a single bit be communicated across slices").
* :attr:`OpClass.COMPARE` — set-less-than and the sign-testing branches
  need the sign bit, i.e. the full operands, before any result bit is
  known.
* :attr:`OpClass.FULL` — multiply/divide and other units that collect
  all operand slices and then compute atomically.
* :attr:`OpClass.ZERO_TEST` — ``beq``/``bne``: each slice can be
  compared independently (a per-slice XOR/OR reduction), which is what
  enables early branch resolution (paper §5.3).
"""

from __future__ import annotations

import enum

from repro.isa import instructions as ii


class OpClass(enum.Enum):
    """Inter-slice dependence class of an operation."""

    LOGIC = "logic"
    ARITH = "arith"
    SHIFT_LEFT = "shift_left"
    SHIFT_RIGHT = "shift_right"
    COMPARE = "compare"
    ZERO_TEST = "zero_test"
    FULL = "full"
    LOAD = "load"
    STORE = "store"
    JUMP = "jump"
    SYSCALL = "syscall"
    NOP = "nop"


_TABLE: dict[str, OpClass] = {}
for _m in ("and", "or", "xor", "nor", "andi", "ori", "xori", "lui"):
    _TABLE[_m] = OpClass.LOGIC
for _m in ("add", "addu", "sub", "subu", "addi", "addiu"):
    _TABLE[_m] = OpClass.ARITH
for _m in ("sll", "sllv"):
    _TABLE[_m] = OpClass.SHIFT_LEFT
for _m in ("srl", "sra", "srlv", "srav"):
    _TABLE[_m] = OpClass.SHIFT_RIGHT
for _m in ("slt", "slti", "sltu", "sltiu"):
    _TABLE[_m] = OpClass.COMPARE
for _m in ("beq", "bne"):
    _TABLE[_m] = OpClass.ZERO_TEST
for _m in ("blez", "bgtz", "bltz", "bgez"):
    _TABLE[_m] = OpClass.COMPARE
for _m in ii.MULTDIV_OPS | {"mfhi", "mflo", "mthi", "mtlo"}:
    _TABLE[_m] = OpClass.FULL
# Floating point: §6 — "division and floating-point instructions
# require all bits to be produced before starting their execution.
# For these cases, a full 32-bit unit is needed."
for _m in ii.FP3_OPS | ii.FP2_OPS | ii.FP_CMP_OPS | {"mfc1", "mtc1"}:
    _TABLE[_m] = OpClass.FULL
for _m in ii.FP_BRANCH_OPS:
    _TABLE[_m] = OpClass.COMPARE
for _m in ii.LOAD_OPS:
    _TABLE[_m] = OpClass.LOAD
for _m in ii.STORE_OPS:
    _TABLE[_m] = OpClass.STORE
for _m in ii.JUMP_OPS:
    _TABLE[_m] = OpClass.JUMP
_TABLE["syscall"] = OpClass.SYSCALL
_TABLE["break"] = OpClass.SYSCALL


def op_class(mnemonic: str) -> OpClass:
    """Return the :class:`OpClass` of a hardware mnemonic."""
    try:
        return _TABLE[mnemonic]
    except KeyError:
        raise ValueError(f"unknown mnemonic {mnemonic!r}") from None


#: Classes whose slices can begin before all input slices are known.
SLICEABLE: frozenset[OpClass] = frozenset(
    {
        OpClass.LOGIC,
        OpClass.ARITH,
        OpClass.SHIFT_LEFT,
        OpClass.SHIFT_RIGHT,
        OpClass.ZERO_TEST,
        OpClass.LOAD,   # address generation slices like ARITH
        OpClass.STORE,  # likewise
    }
)


def is_sliceable(mnemonic: str) -> bool:
    """True when the op's execution can be decomposed across slices."""
    return op_class(mnemonic) in SLICEABLE
