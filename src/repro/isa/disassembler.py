"""Disassembler: decoded instructions back to canonical assembly text.

Primarily used for debugging, trace dumps and the encode/decode/format
round-trip property tests.
"""

from __future__ import annotations

from repro.isa.encoding import decode
from repro.isa.instructions import (
    BRANCH1_OPS,
    BRANCH2_OPS,
    FP2_OPS,
    FP3_OPS,
    FP_BRANCH_OPS,
    FP_CMP_OPS,
    I_ALU_OPS,
    LOAD_OPS,
    MULTDIV_OPS,
    R3_OPS,
    RC_SHIFT_OPS,
    RV_SHIFT_OPS,
    STORE_OPS,
    Instruction,
)
from repro.isa.registers import fp_reg_name, reg_name


def format_instruction(inst: Instruction, pc: int | None = None) -> str:
    """Render *inst* as canonical assembly.

    When *pc* is given, branch offsets are rendered as absolute hex
    targets; otherwise as relative word offsets.
    """
    m = inst.mnemonic
    r = reg_name
    if inst.is_nop:
        return "nop"
    if m in R3_OPS:
        return f"{m} {r(inst.rd)}, {r(inst.rs)}, {r(inst.rt)}"
    if m in RV_SHIFT_OPS:
        return f"{m} {r(inst.rd)}, {r(inst.rt)}, {r(inst.rs)}"
    if m in RC_SHIFT_OPS:
        return f"{m} {r(inst.rd)}, {r(inst.rt)}, {inst.shamt}"
    if m in I_ALU_OPS:
        return f"{m} {r(inst.rt)}, {r(inst.rs)}, {inst.imm}"
    if m == "lui":
        return f"lui {r(inst.rt)}, {inst.imm & 0xFFFF:#x}"
    if m in ("lwc1", "swc1"):
        return f"{m} {fp_reg_name(inst.rt)}, {inst.imm}({r(inst.rs)})"
    if m in LOAD_OPS | STORE_OPS:
        return f"{m} {r(inst.rt)}, {inst.imm}({r(inst.rs)})"
    if m in FP3_OPS:
        return f"{m} {fp_reg_name(inst.shamt)}, {fp_reg_name(inst.rd)}, {fp_reg_name(inst.rt)}"
    if m in FP2_OPS:
        return f"{m} {fp_reg_name(inst.shamt)}, {fp_reg_name(inst.rd)}"
    if m in FP_CMP_OPS:
        return f"{m} {fp_reg_name(inst.rd)}, {fp_reg_name(inst.rt)}"
    if m in FP_BRANCH_OPS:
        return f"{m} {_branch_target(inst, pc)}"
    if m in ("mfc1", "mtc1"):
        return f"{m} {r(inst.rt)}, {fp_reg_name(inst.rd)}"
    if m in BRANCH2_OPS:
        return f"{m} {r(inst.rs)}, {r(inst.rt)}, {_branch_target(inst, pc)}"
    if m in BRANCH1_OPS:
        return f"{m} {r(inst.rs)}, {_branch_target(inst, pc)}"
    if m in ("j", "jal"):
        return f"{m} {inst.target << 2:#x}"
    if m == "jr":
        return f"jr {r(inst.rs)}"
    if m == "jalr":
        return f"jalr {r(inst.rd)}, {r(inst.rs)}"
    if m in MULTDIV_OPS:
        return f"{m} {r(inst.rs)}, {r(inst.rt)}"
    if m in ("mfhi", "mflo"):
        return f"{m} {r(inst.rd)}"
    if m in ("mthi", "mtlo"):
        return f"{m} {r(inst.rs)}"
    return m


def _branch_target(inst: Instruction, pc: int | None) -> str:
    if pc is None:
        return f".{inst.imm * 4:+d}"
    return f"{pc + 4 + inst.imm * 4:#x}"


def disassemble(word: int, pc: int | None = None) -> str:
    """Decode and format one 32-bit instruction word."""
    return format_instruction(decode(word), pc)


def disassemble_program(words: list[int], base: int) -> list[str]:
    """Disassemble a text segment into ``addr: text`` lines."""
    return [f"{base + 4 * i:#010x}: {disassemble(w, base + 4 * i)}" for i, w in enumerate(words)]
