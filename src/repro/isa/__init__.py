"""ISA substrate: a PISA-like 32-bit MIPS-style instruction set.

The paper's evaluation uses the SimpleScalar PISA instruction set.  This
package provides a from-scratch equivalent: register conventions
(:mod:`repro.isa.registers`), binary encodings (:mod:`repro.isa.encoding`),
a decoded-instruction IR (:mod:`repro.isa.instructions`), a two-pass
assembler (:mod:`repro.isa.assembler`), a disassembler
(:mod:`repro.isa.disassembler`) and the operation classification used by
the bit-slice scheduler (:mod:`repro.isa.opclass`).
"""

from repro.isa.assembler import AssemblerError, Program, assemble
from repro.isa.disassembler import disassemble
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Instruction
from repro.isa.opclass import OpClass, op_class
from repro.isa.registers import REG_NAMES, reg_name, reg_num

__all__ = [
    "AssemblerError",
    "Instruction",
    "OpClass",
    "Program",
    "REG_NAMES",
    "assemble",
    "decode",
    "disassemble",
    "encode",
    "op_class",
    "reg_name",
    "reg_num",
]
