"""Two-pass assembler for the PISA-like ISA.

Supports the hardware instruction set of :mod:`repro.isa.encoding`, a
practical set of pseudo-instructions (``li``, ``la``, ``move``, ``b``,
``beqz``/``bnez``, ``blt``/``bge``/``bgt``/``ble`` and unsigned forms,
``mul``, ``neg``, ``not``, ``halt``), and the data directives used by
the workload suite (``.text``/``.data``/``.word``/``.half``/``.byte``/
``.space``/``.ascii``/``.asciiz``/``.align``/``.equ``/``.globl``).

The output is a :class:`Program`: encoded text words, an initialized
data image, and a symbol table.  Addressing follows the usual MIPS
layout (text at ``0x0040_0000``, data at ``0x1000_0000``); branches are
PC-relative word offsets from the fall-through address with **no delay
slot** (as in SimpleScalar's simplified PISA model).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa.encoding import ALL_MNEMONICS, OPCODES, encode
from repro.isa.instructions import (
    BRANCH1_OPS,
    BRANCH2_OPS,
    FP2_OPS,
    FP3_OPS,
    FP_BRANCH_OPS,
    FP_CMP_OPS,
    I_ALU_OPS,
    LOAD_OPS,
    MULTDIV_OPS,
    R3_OPS,
    RC_SHIFT_OPS,
    RV_SHIFT_OPS,
    STORE_OPS,
    Instruction,
)
from repro.isa.registers import fp_reg_num, reg_num

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
STACK_TOP = 0x7FFF_F000


class AssemblerError(ValueError):
    """Raised on any syntax or semantic error, with line context."""

    def __init__(self, message: str, lineno: int | None = None, line: str | None = None):
        loc = f" (line {lineno}: {line!r})" if lineno is not None else ""
        super().__init__(message + loc)
        self.lineno = lineno


@dataclass
class Program:
    """An assembled program image.

    Attributes:
        text_base: virtual address of the first text word.
        text: encoded 32-bit instruction words.
        data_base: virtual address of the data segment.
        data: initialized data image (zero-padded over ``.space``).
        symbols: label → virtual address.
        entry: entry-point address (label ``main`` if present, else
            ``text_base``).
        source_map: text word index → source line number, for diagnostics.
    """

    text_base: int = TEXT_BASE
    text: list[int] = field(default_factory=list)
    data_base: int = DATA_BASE
    data: bytearray = field(default_factory=bytearray)
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = TEXT_BASE
    source_map: dict[int, int] = field(default_factory=dict)

    @property
    def text_size(self) -> int:
        return 4 * len(self.text)

    def address_of(self, label: str) -> int:
        """Virtual address of *label* (raises ``KeyError`` if absent)."""
        return self.symbols[label]


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_MEM_RE = re.compile(r"^(.*)\(\s*(\$?\w+)\s*\)$")
_HILO_RE = re.compile(r"^%(hi|lo)\(\s*([A-Za-z_.$][\w.$]*)\s*\)$")
_SYM_EXPR_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*\d+)?$")


def _split_operands(text: str) -> list[str]:
    """Split an operand string on commas, respecting character literals."""
    if not text:
        return []
    parts: list[str] = []
    depth = 0
    cur = []
    in_str: str | None = None
    for ch in text:
        if in_str:
            cur.append(ch)
            if ch == in_str:
                in_str = None
            continue
        if ch in "'\"":
            in_str = ch
            cur.append(ch)
        elif ch == "(":
            depth += 1
            cur.append(ch)
        elif ch == ")":
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur).strip())
    return [p for p in parts if p]


@dataclass
class _Item:
    """One pending text item between passes: a prototype instruction."""

    mnemonic: str
    operands: list[str]
    lineno: int
    line: str
    address: int = 0


class Assembler:
    """Two-pass assembler.  Use the :func:`assemble` convenience wrapper."""

    def __init__(self) -> None:
        self.symbols: dict[str, int] = {}
        self.equs: dict[str, int] = {}
        self.items: list[_Item] = []
        self.data = bytearray()
        self.text_loc = TEXT_BASE
        self.data_loc = DATA_BASE
        self.section = "text"
        self._pending_labels: list[str] = []
        self._data_fixups: list[tuple[int, int, str, int, str]] = []

    # ------------------------------------------------------------------ pass 1

    def first_pass(self, source: str) -> None:
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw).strip()
            while line:
                m = _LABEL_RE.match(line)
                if m and not line.startswith("."):
                    label, line = m.group(1), m.group(2).strip()
                    self._define_label(label, lineno, raw)
                    continue
                break
            if not line:
                continue
            if line.startswith("."):
                self._directive(line, lineno, raw)
            else:
                self._instruction_line(line, lineno, raw)

    @staticmethod
    def _strip_comment(line: str) -> str:
        out = []
        in_str: str | None = None
        for ch in line:
            if in_str:
                out.append(ch)
                if ch == in_str:
                    in_str = None
                continue
            if ch in "'\"":
                in_str = ch
                out.append(ch)
            elif ch in "#;":
                break
            else:
                out.append(ch)
        return "".join(out)

    def _define_label(self, label: str, lineno: int, raw: str) -> None:
        if label in self.symbols or label in self.equs or label in self._pending_labels:
            raise AssemblerError(f"duplicate label {label!r}", lineno, raw)
        if self.section == "text":
            self.symbols[label] = self.text_loc
        else:
            # Data labels bind lazily so that an aligning directive
            # (e.g. `.word` after an odd-length string) moves the label
            # with it rather than leaving it at the unaligned address.
            self._pending_labels.append(label)

    def _bind_pending_labels(self) -> None:
        for label in self._pending_labels:
            self.symbols[label] = self.data_loc
        self._pending_labels.clear()

    def _directive(self, line: str, lineno: int, raw: str) -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1].strip() if len(parts) > 1 else ""
        if name == ".text":
            self._bind_pending_labels()
            self.section = "text"
        elif name == ".data":
            self.section = "data"
        elif name == ".globl" or name == ".global" or name == ".ent" or name == ".end":
            pass
        elif name == ".equ" or name == ".set":
            ops = _split_operands(rest)
            if len(ops) != 2:
                raise AssemblerError(".equ needs name, value", lineno, raw)
            self.equs[ops[0]] = self._int_literal(ops[1], lineno, raw)
        elif name == ".align":
            n = self._int_literal(rest, lineno, raw)
            self._align(1 << n)
            self._bind_pending_labels()
        elif name == ".space":
            n = self._int_literal(rest, lineno, raw)
            self._bind_pending_labels()
            self._emit_data(b"\x00" * n)
        elif name in (".word", ".half", ".byte"):
            width = {".word": 4, ".half": 2, ".byte": 1}[name]
            self._align(width)
            self._bind_pending_labels()
            ops = _split_operands(rest)
            # Values may reference labels, so resolution is deferred: emit
            # placeholders now and patch in pass 2.
            for op in ops:
                self._data_fixups.append((len(self.data) if self.section == "data" else -1, width, op, lineno, raw))
                self._emit_data(b"\x00" * width)
        elif name in (".ascii", ".asciiz"):
            self._bind_pending_labels()
            value = self._string_literal(rest, lineno, raw)
            if name == ".asciiz":
                value += b"\x00"
            self._emit_data(value)
        else:
            raise AssemblerError(f"unknown directive {name}", lineno, raw)

    def _align(self, width: int) -> None:
        if self.section != "data":
            return
        pad = (-len(self.data)) % width
        self._emit_data(b"\x00" * pad)

    def _emit_data(self, payload: bytes) -> None:
        if self.section != "data":
            raise AssemblerError("data directive outside .data section")
        self.data.extend(payload)
        self.data_loc = DATA_BASE + len(self.data)

    def _string_literal(self, text: str, lineno: int, raw: str) -> bytes:
        text = text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblerError("expected string literal", lineno, raw)
        try:
            return text[1:-1].encode().decode("unicode_escape").encode("latin-1")
        except Exception as exc:  # noqa: BLE001 - report as assembly error
            raise AssemblerError(f"bad string literal: {exc}", lineno, raw) from None

    def _instruction_line(self, line: str, lineno: int, raw: str) -> None:
        if self.section != "text":
            raise AssemblerError("instruction outside .text section", lineno, raw)
        parts = line.split(None, 1)
        mnem = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        for proto in self._expand(mnem, operands, lineno, raw):
            proto.address = self.text_loc
            self.items.append(proto)
            self.text_loc += 4

    # ------------------------------------------------------- pseudo expansion

    def _expand(self, mnem: str, ops: list[str], lineno: int, raw: str) -> list[_Item]:
        mk = lambda m, o: _Item(m, o, lineno, raw)  # noqa: E731
        if mnem == "nop":
            return [mk("sll", ["$0", "$0", "0"])]
        if mnem == "halt":
            return [mk("addiu", ["$v0", "$0", "10"]), mk("syscall", [])]
        if mnem == "move":
            self._arity(ops, 2, lineno, raw)
            return [mk("addu", [ops[0], ops[1], "$0"])]
        if mnem == "neg":
            self._arity(ops, 2, lineno, raw)
            return [mk("subu", [ops[0], "$0", ops[1]])]
        if mnem == "not":
            self._arity(ops, 2, lineno, raw)
            return [mk("nor", [ops[0], ops[1], "$0"])]
        if mnem == "b":
            self._arity(ops, 1, lineno, raw)
            return [mk("beq", ["$0", "$0", ops[0]])]
        if mnem == "beqz":
            self._arity(ops, 2, lineno, raw)
            return [mk("beq", [ops[0], "$0", ops[1]])]
        if mnem == "bnez":
            self._arity(ops, 2, lineno, raw)
            return [mk("bne", [ops[0], "$0", ops[1]])]
        if mnem in ("blt", "bge", "bgt", "ble", "bltu", "bgeu", "bgtu", "bleu"):
            self._arity(ops, 3, lineno, raw)
            slt = "sltu" if mnem.endswith("u") else "slt"
            base = mnem[:3]
            a, b_, target = ops
            if base in ("blt", "bge"):
                cmp_ops = ["$at", a, b_]
            else:  # bgt/ble: swap operands
                cmp_ops = ["$at", b_, a]
            br = "bne" if base in ("blt", "bgt") else "beq"
            return [mk(slt, cmp_ops), mk(br, ["$at", "$0", target])]
        if mnem == "mul":
            self._arity(ops, 3, lineno, raw)
            return [mk("mult", [ops[1], ops[2]]), mk("mflo", [ops[0]])]
        if mnem == "li":
            self._arity(ops, 2, lineno, raw)
            value = self._int_literal(ops[1], lineno, raw) & 0xFFFFFFFF
            return self._load_imm32(ops[0], value, mk)
        if mnem == "li.s":
            # Load an FP single constant: materialize the bit pattern
            # in $at, then move it to the FP register.
            self._arity(ops, 2, lineno, raw)
            import struct

            try:
                bits = struct.unpack("<I", struct.pack("<f", float(ops[1])))[0]
            except (ValueError, OverflowError):
                raise AssemblerError(f"bad float literal {ops[1]!r}", lineno, raw) from None
            return self._load_imm32("$at", bits, mk) + [mk("mtc1", ["$at", ops[0]])]
        if mnem == "la":
            self._arity(ops, 2, lineno, raw)
            # Deferred: label address resolved in pass 2 via the
            # adjusted %hi/%lo pair (addiu sign-extends %lo).
            return [
                mk("lui", ["$at", f"%hi({ops[1]})"]),
                mk("addiu", [ops[0], "$at", f"%lo({ops[1]})"]),
            ]
        if mnem in LOAD_OPS | STORE_OPS and len(ops) == 2 and "(" not in ops[1] and not self._looks_numeric(ops[1]):
            # `lw $t0, label` → address through $at.
            return [
                mk("lui", ["$at", f"%hi({ops[1]})"]),
                mk(mnem, [ops[0], f"%lo({ops[1]})($at)"]),
            ]
        if mnem not in ALL_MNEMONICS:
            raise AssemblerError(f"unknown mnemonic {mnem!r}", lineno, raw)
        return [mk(mnem, ops)]

    def _load_imm32(self, reg: str, value: int, mk) -> list[_Item]:
        lo = value & 0xFFFF
        hi = (value >> 16) & 0xFFFF
        signed = value - 0x1_0000_0000 if value & 0x8000_0000 else value
        if -0x8000 <= signed < 0x8000:
            return [mk("addiu", [reg, "$0", str(signed)])]
        if hi == 0:
            return [mk("ori", [reg, "$0", str(lo)])]
        if lo == 0:
            return [mk("lui", [reg, str(hi)])]
        return [mk("lui", [reg, str(hi)]), mk("ori", [reg, reg, str(lo)])]

    @staticmethod
    def _arity(ops: list[str], n: int, lineno: int, raw: str) -> None:
        if len(ops) != n:
            raise AssemblerError(f"expected {n} operands, got {len(ops)}", lineno, raw)

    @staticmethod
    def _looks_numeric(text: str) -> bool:
        t = text.strip()
        return bool(re.match(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+|'((\\.)|[^'])')$", t))

    # ------------------------------------------------------------------ pass 2

    def second_pass(self) -> Program:
        program = Program(symbols=dict(self.symbols), data=self.data)
        program.entry = self.symbols.get("main", TEXT_BASE)
        for index, item in enumerate(self.items):
            inst = self._encode_item(item)
            program.text.append(encode(inst))
            program.source_map[index] = item.lineno
        for offset, width, expr, lineno, raw in self._data_fixups:
            value = self._value_expr(expr, lineno, raw) & ((1 << (8 * width)) - 1)
            self.data[offset : offset + width] = value.to_bytes(width, "little")
        program.data = self.data
        return program

    def _encode_item(self, item: _Item) -> Instruction:
        m, ops, lineno, raw = item.mnemonic, item.operands, item.lineno, item.line
        try:
            if m in R3_OPS:
                self._arity(ops, 3, lineno, raw)
                return Instruction(m, rd=reg_num(ops[0]), rs=reg_num(ops[1]), rt=reg_num(ops[2]))
            if m in RV_SHIFT_OPS:
                self._arity(ops, 3, lineno, raw)
                # rd = rt shifted by rs
                return Instruction(m, rd=reg_num(ops[0]), rt=reg_num(ops[1]), rs=reg_num(ops[2]))
            if m in RC_SHIFT_OPS:
                self._arity(ops, 3, lineno, raw)
                shamt = self._value_expr(ops[2], lineno, raw)
                if not 0 <= shamt < 32:
                    raise AssemblerError(f"shift amount out of range: {shamt}", lineno, raw)
                return Instruction(m, rd=reg_num(ops[0]), rt=reg_num(ops[1]), shamt=shamt)
            if m in I_ALU_OPS:
                self._arity(ops, 3, lineno, raw)
                imm = self._value_expr(ops[2], lineno, raw)
                return Instruction(m, rt=reg_num(ops[0]), rs=reg_num(ops[1]), imm=self._fit_imm(m, imm, lineno, raw))
            if m == "lui":
                self._arity(ops, 2, lineno, raw)
                imm = self._value_expr(ops[1], lineno, raw)
                return Instruction(m, rt=reg_num(ops[0]), imm=imm & 0xFFFF)
            if m in LOAD_OPS | STORE_OPS:
                self._arity(ops, 2, lineno, raw)
                offset, base = self._mem_operand(ops[1], lineno, raw)
                dest = fp_reg_num(ops[0]) if m in ("lwc1", "swc1") else reg_num(ops[0])
                return Instruction(m, rt=dest, rs=base, imm=offset)
            if m in FP3_OPS:
                self._arity(ops, 3, lineno, raw)
                return Instruction(
                    m, shamt=fp_reg_num(ops[0]), rd=fp_reg_num(ops[1]), rt=fp_reg_num(ops[2])
                )
            if m in FP2_OPS:
                self._arity(ops, 2, lineno, raw)
                return Instruction(m, shamt=fp_reg_num(ops[0]), rd=fp_reg_num(ops[1]))
            if m in FP_CMP_OPS:
                self._arity(ops, 2, lineno, raw)
                return Instruction(m, rd=fp_reg_num(ops[0]), rt=fp_reg_num(ops[1]))
            if m in FP_BRANCH_OPS:
                self._arity(ops, 1, lineno, raw)
                return Instruction(m, imm=self._branch_offset(ops[0], item.address, lineno, raw))
            if m in ("mfc1", "mtc1"):
                self._arity(ops, 2, lineno, raw)
                return Instruction(m, rt=reg_num(ops[0]), rd=fp_reg_num(ops[1]))
            if m in BRANCH2_OPS:
                self._arity(ops, 3, lineno, raw)
                return Instruction(
                    m, rs=reg_num(ops[0]), rt=reg_num(ops[1]),
                    imm=self._branch_offset(ops[2], item.address, lineno, raw),
                )
            if m in BRANCH1_OPS:
                self._arity(ops, 2, lineno, raw)
                return Instruction(m, rs=reg_num(ops[0]), imm=self._branch_offset(ops[1], item.address, lineno, raw))
            if m in ("j", "jal"):
                self._arity(ops, 1, lineno, raw)
                addr = self._value_expr(ops[0], lineno, raw)
                if addr % 4:
                    raise AssemblerError("jump target not word aligned", lineno, raw)
                return Instruction(m, target=(addr >> 2) & 0x3FFFFFF)
            if m == "jr":
                self._arity(ops, 1, lineno, raw)
                return Instruction(m, rs=reg_num(ops[0]))
            if m == "jalr":
                if len(ops) == 1:
                    return Instruction(m, rs=reg_num(ops[0]), rd=31)
                self._arity(ops, 2, lineno, raw)
                return Instruction(m, rd=reg_num(ops[0]), rs=reg_num(ops[1]))
            if m in MULTDIV_OPS:
                self._arity(ops, 2, lineno, raw)
                return Instruction(m, rs=reg_num(ops[0]), rt=reg_num(ops[1]))
            if m in ("mfhi", "mflo"):
                self._arity(ops, 1, lineno, raw)
                return Instruction(m, rd=reg_num(ops[0]))
            if m in ("mthi", "mtlo"):
                self._arity(ops, 1, lineno, raw)
                return Instruction(m, rs=reg_num(ops[0]))
            if m in ("syscall", "break"):
                return Instruction(m)
        except AssemblerError:
            raise
        except ValueError as exc:
            raise AssemblerError(str(exc), lineno, raw) from None
        raise AssemblerError(f"cannot encode mnemonic {m!r}", lineno, raw)

    def _fit_imm(self, mnemonic: str, imm: int, lineno: int, raw: str) -> int:
        unsigned = mnemonic in ("andi", "ori", "xori")
        lo, hi = (0, 0xFFFF) if unsigned else (-0x8000, 0x7FFF)
        if not lo <= imm <= hi:
            raise AssemblerError(f"immediate {imm} out of range for {mnemonic}", lineno, raw)
        return imm

    def _mem_operand(self, text: str, lineno: int, raw: str) -> tuple[int, int]:
        m = _MEM_RE.match(text.strip())
        if not m:
            raise AssemblerError(f"bad memory operand {text!r}", lineno, raw)
        offset_text = m.group(1).strip() or "0"
        offset = self._value_expr(offset_text, lineno, raw)
        if not -0x8000 <= offset <= 0x7FFF:
            raise AssemblerError(f"memory offset {offset} out of range", lineno, raw)
        return offset, reg_num(m.group(2))

    def _branch_offset(self, label: str, address: int, lineno: int, raw: str) -> int:
        target = self._value_expr(label, lineno, raw)
        delta = (target - (address + 4)) >> 2
        if (target - (address + 4)) % 4:
            raise AssemblerError("branch target not word aligned", lineno, raw)
        if not -0x8000 <= delta <= 0x7FFF:
            raise AssemblerError(f"branch to {label} out of range", lineno, raw)
        return delta

    def _value_expr(self, text: str, lineno: int, raw: str) -> int:
        """Evaluate an immediate/address expression.

        Accepts integer literals, character literals, ``.equ`` constants,
        labels, ``label+N``/``label-N``, and ``%hi(sym)``/``%lo(sym)``.
        """
        text = text.strip()
        if text.startswith("-") and not self._looks_numeric(text):
            return -self._value_expr(text[1:], lineno, raw)
        m = _HILO_RE.match(text)
        if m:
            # Adjusted hi/lo pair: %lo is sign-extended when consumed
            # (addiu / memory displacement), so %hi compensates with a
            # +1 carry when %lo's sign bit is set.  addr == (%hi << 16)
            # + sext16(%lo) always holds.
            addr = self._symbol(m.group(2), lineno, raw)
            if m.group(1) == "hi":
                return ((addr + 0x8000) >> 16) & 0xFFFF
            lo = addr & 0xFFFF
            return lo - 0x10000 if lo & 0x8000 else lo
        if self._looks_numeric(text):
            return self._int_literal(text, lineno, raw)
        m = _SYM_EXPR_RE.match(text)
        if m:
            base = self._symbol(m.group(1), lineno, raw)
            delta = int(m.group(2).replace(" ", "")) if m.group(2) else 0
            return base + delta
        raise AssemblerError(f"cannot evaluate expression {text!r}", lineno, raw)

    def _symbol(self, name: str, lineno: int, raw: str) -> int:
        if name in self.equs:
            return self.equs[name]
        if name in self.symbols:
            return self.symbols[name]
        raise AssemblerError(f"undefined symbol {name!r}", lineno, raw)

    def _int_literal(self, text: str, lineno: int | None = None, raw: str | None = None) -> int:
        t = text.strip()
        try:
            if t.startswith("'") and t.endswith("'") and len(t) >= 3:
                body = t[1:-1].encode().decode("unicode_escape")
                if len(body) != 1:
                    raise ValueError
                return ord(body)
            return int(t, 0)
        except ValueError:
            if t in self.equs:
                return self.equs[t]
            raise AssemblerError(f"bad integer literal {text!r}", lineno, raw) from None

    def assemble(self, source: str) -> Program:
        self.first_pass(source)
        self._bind_pending_labels()
        return self.second_pass()


def assemble(source: str) -> Program:
    """Assemble *source* text into a :class:`Program`."""
    return Assembler().assemble(source)
