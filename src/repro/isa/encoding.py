"""Binary instruction encodings for the PISA-like ISA.

Instructions are fixed 32-bit words in three MIPS-style formats:

* **R-type** — ``op=0`` plus a 6-bit function code; register-register
  arithmetic/logic, shifts, jumps through registers, HI/LO moves and
  ``syscall``/``break``.
* **I-type** — a 16-bit immediate; immediate arithmetic/logic, loads,
  stores, and conditional branches (including the ``REGIMM`` group that
  encodes ``bltz``/``bgez`` in the ``rt`` field).
* **J-type** — a 26-bit word target for ``j``/``jal``.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction

#: I-type and J-type opcode numbers by mnemonic.
OPCODES: dict[str, int] = {
    "j": 2, "jal": 3,
    "beq": 4, "bne": 5, "blez": 6, "bgtz": 7,
    "addi": 8, "addiu": 9, "slti": 10, "sltiu": 11,
    "andi": 12, "ori": 13, "xori": 14, "lui": 15,
    "lb": 32, "lh": 33, "lw": 35, "lbu": 36, "lhu": 37,
    "sb": 40, "sh": 41, "sw": 43,
    "lwc1": 49, "swc1": 57,
}

#: COP1 opcode and its sub-format codes (the ``rs`` field).
COP1_OP = 17
FMT_S = 16   # single-precision arithmetic
FMT_W = 20   # fixed-point (word) source for conversions
COP1_MFC1 = 0
COP1_MTC1 = 4
COP1_BC1 = 8

#: Single-precision (fmt S) function codes.  Fields: fmt=rs, ft=rt,
#: fs=rd, fd=shamt, funct = low 6 bits.
FP_S_FUNCTS: dict[str, int] = {
    "add.s": 0, "sub.s": 1, "mul.s": 2, "div.s": 3,
    "sqrt.s": 4, "abs.s": 5, "mov.s": 6, "neg.s": 7,
    "cvt.w.s": 36,
    "c.eq.s": 50, "c.lt.s": 60, "c.le.s": 62,
}

#: Word-format (fmt W) function codes.
FP_W_FUNCTS: dict[str, int] = {"cvt.s.w": 32}

#: All COP1 mnemonics.
FP_MNEMONICS: frozenset[str] = (
    frozenset(FP_S_FUNCTS) | frozenset(FP_W_FUNCTS)
    | frozenset({"mfc1", "mtc1", "bc1t", "bc1f", "lwc1", "swc1"})
)

#: R-type function codes by mnemonic (all have opcode 0).
FUNCTS: dict[str, int] = {
    "sll": 0, "srl": 2, "sra": 3, "sllv": 4, "srlv": 6, "srav": 7,
    "jr": 8, "jalr": 9, "syscall": 12, "break": 13,
    "mfhi": 16, "mthi": 17, "mflo": 18, "mtlo": 19,
    "mult": 24, "multu": 25, "div": 26, "divu": 27,
    "add": 32, "addu": 33, "sub": 34, "subu": 35,
    "and": 36, "or": 37, "xor": 38, "nor": 39,
    "slt": 42, "sltu": 43,
}

#: REGIMM (opcode 1) ``rt``-field codes.
REGIMM: dict[str, int] = {"bltz": 0, "bgez": 1}

_OP_TO_MNEMONIC = {v: k for k, v in OPCODES.items()}
_FUNCT_TO_MNEMONIC = {v: k for k, v in FUNCTS.items()}
_REGIMM_TO_MNEMONIC = {v: k for k, v in REGIMM.items()}
_FP_S_TO_MNEMONIC = {v: k for k, v in FP_S_FUNCTS.items()}
_FP_W_TO_MNEMONIC = {v: k for k, v in FP_W_FUNCTS.items()}

#: Mnemonics whose 16-bit immediate is zero-extended rather than
#: sign-extended when executed.
ZERO_EXTEND_IMM: frozenset[str] = frozenset({"andi", "ori", "xori"})

#: All hardware mnemonics (pseudo-instructions expand to these).
ALL_MNEMONICS: frozenset[str] = (
    frozenset(OPCODES) | frozenset(FUNCTS) | frozenset(REGIMM) | FP_MNEMONICS
)


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


def _u16(value: int) -> int:
    """Clamp a signed or unsigned immediate into its 16-bit field image."""
    if not -0x8000 <= value <= 0xFFFF:
        raise EncodingError(f"immediate out of 16-bit range: {value}")
    return value & 0xFFFF


def encode(inst: Instruction) -> int:
    """Encode a decoded :class:`Instruction` into its 32-bit word."""
    m = inst.mnemonic
    if m in FP_S_FUNCTS or m in FP_W_FUNCTS:
        fmt = FMT_S if m in FP_S_FUNCTS else FMT_W
        funct = FP_S_FUNCTS.get(m, FP_W_FUNCTS.get(m))
        return (
            (COP1_OP << 26) | (fmt << 21) | (inst.rt << 16)
            | (inst.rd << 11) | ((inst.shamt & 0x1F) << 6) | funct
        )
    if m == "mfc1":
        return (COP1_OP << 26) | (COP1_MFC1 << 21) | (inst.rt << 16) | (inst.rd << 11)
    if m == "mtc1":
        return (COP1_OP << 26) | (COP1_MTC1 << 21) | (inst.rt << 16) | (inst.rd << 11)
    if m in ("bc1f", "bc1t"):
        tf = 1 if m == "bc1t" else 0
        return (COP1_OP << 26) | (COP1_BC1 << 21) | (tf << 16) | _u16(inst.imm)
    if m in FUNCTS:
        word = (
            (inst.rs << 21)
            | (inst.rt << 16)
            | (inst.rd << 11)
            | ((inst.shamt & 0x1F) << 6)
            | FUNCTS[m]
        )
        return word
    if m in REGIMM:
        return (1 << 26) | (inst.rs << 21) | (REGIMM[m] << 16) | _u16(inst.imm)
    if m in ("j", "jal"):
        if not 0 <= inst.target < (1 << 26):
            raise EncodingError(f"jump target out of range: {inst.target}")
        return (OPCODES[m] << 26) | inst.target
    if m in OPCODES:
        return (OPCODES[m] << 26) | (inst.rs << 21) | (inst.rt << 16) | _u16(inst.imm)
    raise EncodingError(f"unknown mnemonic {m!r}")


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word into an :class:`Instruction`.

    Branch and memory immediates are sign-extended; the logical
    immediates (``andi``/``ori``/``xori``) are kept zero-extended, which
    matches how the execution stage consumes them.
    """
    word &= 0xFFFFFFFF
    op = word >> 26
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    imm16 = word & 0xFFFF
    if op == 0:
        funct = word & 0x3F
        try:
            m = _FUNCT_TO_MNEMONIC[funct]
        except KeyError:
            raise EncodingError(f"unknown R-type funct {funct}") from None
        rd = (word >> 11) & 0x1F
        shamt = (word >> 6) & 0x1F
        return Instruction(m, rs=rs, rt=rt, rd=rd, shamt=shamt)
    if op == 1:
        try:
            m = _REGIMM_TO_MNEMONIC[rt]
        except KeyError:
            raise EncodingError(f"unknown REGIMM code {rt}") from None
        return Instruction(m, rs=rs, imm=_sext16(imm16))
    if op in (2, 3):
        return Instruction(_OP_TO_MNEMONIC[op], target=word & 0x3FFFFFF)
    if op == COP1_OP:
        fmt = rs
        rd = (word >> 11) & 0x1F
        shamt = (word >> 6) & 0x1F
        funct = word & 0x3F
        if fmt == FMT_S:
            try:
                m = _FP_S_TO_MNEMONIC[funct]
            except KeyError:
                raise EncodingError(f"unknown FP.S funct {funct}") from None
            return Instruction(m, rs=fmt, rt=rt, rd=rd, shamt=shamt)
        if fmt == FMT_W:
            try:
                m = _FP_W_TO_MNEMONIC[funct]
            except KeyError:
                raise EncodingError(f"unknown FP.W funct {funct}") from None
            return Instruction(m, rs=fmt, rt=rt, rd=rd, shamt=shamt)
        if fmt == COP1_MFC1:
            return Instruction("mfc1", rt=rt, rd=rd)
        if fmt == COP1_MTC1:
            return Instruction("mtc1", rt=rt, rd=rd)
        if fmt == COP1_BC1:
            return Instruction("bc1t" if rt & 1 else "bc1f", imm=_sext16(imm16))
        raise EncodingError(f"unknown COP1 format {fmt}")
    try:
        m = _OP_TO_MNEMONIC[op]
    except KeyError:
        raise EncodingError(f"unknown opcode {op}") from None
    imm = imm16 if m in ZERO_EXTEND_IMM or m == "lui" else _sext16(imm16)
    return Instruction(m, rs=rs, rt=rt, imm=imm)


def _sext16(value: int) -> int:
    """Sign-extend a 16-bit field image to a Python int."""
    return value - 0x10000 if value & 0x8000 else value
