"""Decoded-instruction intermediate representation and dataflow queries.

:class:`Instruction` is the single IR shared by the assembler, the
functional emulator, the trace generator and the timing simulator.  The
dataflow helpers (:meth:`Instruction.src_regs` /
:meth:`Instruction.dst_regs`) report *extended* register numbers: 0–31
are the GPRs and 32/33 are HI/LO, so multiply/divide dependences are
tracked uniformly with everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import FCC, FP_BASE, HI, LO, reg_name

#: Mnemonics grouped by operand shape, used for dataflow and printing.
R3_OPS = frozenset({"add", "addu", "sub", "subu", "and", "or", "xor", "nor", "slt", "sltu"})
RV_SHIFT_OPS = frozenset({"sllv", "srlv", "srav"})
RC_SHIFT_OPS = frozenset({"sll", "srl", "sra"})
I_ALU_OPS = frozenset({"addi", "addiu", "slti", "sltiu", "andi", "ori", "xori"})
LOAD_OPS = frozenset({"lb", "lbu", "lh", "lhu", "lw", "lwc1"})
STORE_OPS = frozenset({"sb", "sh", "sw", "swc1"})
BRANCH2_OPS = frozenset({"beq", "bne"})
BRANCH1_OPS = frozenset({"blez", "bgtz", "bltz", "bgez"})
FP_BRANCH_OPS = frozenset({"bc1t", "bc1f"})
BRANCH_OPS = BRANCH2_OPS | BRANCH1_OPS | FP_BRANCH_OPS
MULTDIV_OPS = frozenset({"mult", "multu", "div", "divu"})
JUMP_OPS = frozenset({"j", "jal", "jr", "jalr"})
#: FP fmt-S/W register-register operations: fd = fs op ft (fields:
#: ft=rt, fs=rd, fd=shamt).
FP3_OPS = frozenset({"add.s", "sub.s", "mul.s", "div.s"})
FP2_OPS = frozenset({"sqrt.s", "abs.s", "mov.s", "neg.s", "cvt.w.s", "cvt.s.w"})
FP_CMP_OPS = frozenset({"c.eq.s", "c.lt.s", "c.le.s"})

#: Bytes transferred by each memory mnemonic.
MEM_WIDTH: dict[str, int] = {
    "lb": 1, "lbu": 1, "sb": 1,
    "lh": 2, "lhu": 2, "sh": 2,
    "lw": 4, "sw": 4,
    "lwc1": 4, "swc1": 4,
}


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded instruction.

    Fields that a format does not use stay at their zero defaults; the
    encoder only reads the fields relevant to the mnemonic's format.

    Attributes:
        mnemonic: lower-case hardware mnemonic (no pseudo-ops).
        rs, rt, rd: register fields (0–31).
        shamt: shift amount for constant shifts (0–31).
        imm: immediate; sign-extended for arithmetic/memory/branch forms,
            zero-extended for ``andi``/``ori``/``xori``/``lui``.
        target: 26-bit word target for ``j``/``jal``.
    """

    mnemonic: str
    rs: int = 0
    rt: int = 0
    rd: int = 0
    shamt: int = 0
    imm: int = 0
    target: int = 0

    def src_regs(self) -> tuple[int, ...]:
        """Extended register numbers this instruction reads (dedup, $0 kept)."""
        m = self.mnemonic
        if m in R3_OPS or m in MULTDIV_OPS or m in BRANCH2_OPS:
            return (self.rs, self.rt)
        if m in RV_SHIFT_OPS:
            return (self.rs, self.rt)
        if m in RC_SHIFT_OPS:
            return (self.rt,)
        if m == "lwc1":
            return (self.rs,)
        if m == "swc1":
            return (self.rs, FP_BASE + self.rt)
        if m in I_ALU_OPS or m in LOAD_OPS or m in BRANCH1_OPS:
            return (self.rs,)
        if m in STORE_OPS:
            return (self.rs, self.rt)
        if m in FP3_OPS or m in FP_CMP_OPS:
            return (FP_BASE + self.rd, FP_BASE + self.rt)  # fs, ft
        if m in FP2_OPS:
            return (FP_BASE + self.rd,)  # fs
        if m in FP_BRANCH_OPS:
            return (FCC,)
        if m == "mfc1":
            return (FP_BASE + self.rd,)
        if m == "mtc1":
            return (self.rt,)
        if m in ("jr", "jalr"):
            return (self.rs,)
        if m == "mfhi":
            return (HI,)
        if m == "mflo":
            return (LO,)
        if m in ("mthi", "mtlo"):
            return (self.rs,)
        if m == "syscall":
            # Calling convention: service number in $v0, argument in $a0.
            return (2, 4)
        return ()

    def dst_regs(self) -> tuple[int, ...]:
        """Extended register numbers this instruction writes (never $0)."""
        m = self.mnemonic
        if m in R3_OPS or m in RV_SHIFT_OPS or m in RC_SHIFT_OPS:
            dst = self.rd
        elif m == "lwc1":
            return (FP_BASE + self.rt,)
        elif m == "swc1":
            return ()
        elif m in FP3_OPS or m in FP2_OPS:
            return (FP_BASE + self.shamt,)  # fd
        elif m in FP_CMP_OPS:
            return (FCC,)
        elif m == "mfc1":
            dst = self.rt
        elif m == "mtc1":
            return (FP_BASE + self.rd,)
        elif m in I_ALU_OPS or m in LOAD_OPS or m == "lui":
            dst = self.rt
        elif m in MULTDIV_OPS:
            return (HI, LO)
        elif m in ("mfhi", "mflo"):
            dst = self.rd
        elif m == "mthi":
            return (HI,)
        elif m == "mtlo":
            return (LO,)
        elif m == "jal":
            dst = 31
        elif m == "jalr":
            dst = self.rd if self.rd else 31
        else:
            return ()
        return (dst,) if dst != 0 else ()

    @property
    def is_load(self) -> bool:
        return self.mnemonic in LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self.mnemonic in STORE_OPS

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in BRANCH_OPS

    @property
    def is_jump(self) -> bool:
        return self.mnemonic in JUMP_OPS

    @property
    def is_control(self) -> bool:
        return self.is_branch or self.is_jump

    @property
    def is_nop(self) -> bool:
        return self.mnemonic == "sll" and self.rd == 0 and self.rt == 0 and self.shamt == 0

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from repro.isa.disassembler import format_instruction

        return format_instruction(self)

    def _replace(self, **kwargs) -> "Instruction":
        """Return a copy with the given fields replaced."""
        data = {
            "mnemonic": self.mnemonic, "rs": self.rs, "rt": self.rt,
            "rd": self.rd, "shamt": self.shamt, "imm": self.imm,
            "target": self.target,
        }
        data.update(kwargs)
        return Instruction(**data)


#: Canonical no-op (``sll $0, $0, 0``).
NOP = Instruction("sll")


def describe_operands(inst: Instruction) -> str:
    """Human-readable operand summary, mainly for debugging aids."""
    srcs = ", ".join(reg_name(r) if r < 32 else ("$hi" if r == HI else "$lo") for r in inst.src_regs())
    dsts = ", ".join(reg_name(r) if r < 32 else ("$hi" if r == HI else "$lo") for r in inst.dst_regs())
    return f"reads [{srcs}] writes [{dsts}]"
