"""Return address stack, paper Table 2: 8 entries.

A small circular stack: calls (``jal``/``jalr``) push their return
address; returns (``jr $ra``) pop a predicted target.  Overflow wraps
(overwriting the oldest entry), underflow predicts nothing — both are
the standard hardware behaviours.
"""

from __future__ import annotations


class ReturnAddressStack:
    """Fixed-depth circular return-address predictor."""

    def __init__(self, depth: int = 8) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: list[int] = [0] * depth
        self._top = 0  # number of live entries, saturates at depth
        self._pos = 0  # next push position (circular)
        self.pushes = 0
        self.pops = 0

    def push(self, return_address: int) -> None:
        """Record the return address of a call."""
        self._stack[self._pos] = return_address
        self._pos = (self._pos + 1) % self.depth
        self._top = min(self._top + 1, self.depth)
        self.pushes += 1

    def pop(self) -> int | None:
        """Predicted target of a return, or None when empty."""
        if self._top == 0:
            return None
        self._pos = (self._pos - 1) % self.depth
        self._top -= 1
        self.pops += 1
        return self._stack[self._pos]

    def peek(self) -> int | None:
        """Top of stack without popping."""
        if self._top == 0:
            return None
        return self._stack[(self._pos - 1) % self.depth]

    def __len__(self) -> int:
        return self._top
