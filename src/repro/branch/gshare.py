"""gshare direction predictor (McFarling), paper Table 2: 64k entries.

A global history register is XORed with the branch PC to index a table
of 2-bit saturating counters.  The paper uses a "very large 64k-entry
gshare" for the Figure 6 characterization and the Table 2 machine.
"""

from __future__ import annotations


class GsharePredictor:
    """2-bit-counter gshare with *entries* counters (power of two)."""

    def __init__(self, entries: int = 64 * 1024, history_bits: int | None = None) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self.history_bits = self.index_bits if history_bits is None else history_bits
        self.history = 0
        # Counters start weakly taken (2), the usual initialization.
        self.table = bytearray([2] * entries)
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at *pc*."""
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Train on the resolved outcome; returns whether the prediction was correct.

        The counter is updated and the outcome is shifted into the
        global history (speculative history update is not modeled; the
        characterization and timing model train at resolution).
        """
        index = self._index(pc)
        counter = self.table[index]
        predicted = counter >= 2
        self.predictions += 1
        if predicted != taken:
            self.mispredictions += 1
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        else:
            if counter > 0:
                self.table[index] = counter - 1
        mask = (1 << self.history_bits) - 1
        self.history = ((self.history << 1) | int(taken)) & mask
        return predicted == taken

    @property
    def accuracy(self) -> float:
        return 1.0 - self.mispredictions / self.predictions if self.predictions else 0.0

    def reset_stats(self) -> None:
        self.predictions = 0
        self.mispredictions = 0
