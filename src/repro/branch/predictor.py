"""Combined front-end predictor: gshare + BTB + RAS (paper Table 2).

Conditional branches take their direction from gshare; their targets
are encoded in the instruction and therefore exact once decoded.
Register-indirect jumps predict through the RAS (returns, i.e.
``jr $ra``) or the BTB (other ``jr``/``jalr``); direct jumps are always
correct.  The predictor is trained at resolution, matching how the
characterization and the timing model consume it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.ras import ReturnAddressStack
from repro.emulator.trace import TraceRecord


@dataclass(frozen=True)
class PredictionOutcome:
    """Front-end prediction versus architectural outcome for one
    control instruction."""

    predicted_taken: bool
    predicted_target: int
    actual_taken: bool
    actual_target: int

    @property
    def mispredicted(self) -> bool:
        """True when fetch would have gone down the wrong path."""
        if self.predicted_taken != self.actual_taken:
            return True
        return self.actual_taken and self.predicted_target != self.actual_target


class FrontEndPredictor:
    """gshare + BTB + RAS, with paper Table 2 defaults."""

    def __init__(
        self,
        gshare_entries: int = 64 * 1024,
        btb_entries: int = 512,
        btb_assoc: int = 4,
        ras_depth: int = 8,
    ) -> None:
        self.gshare = GsharePredictor(gshare_entries)
        self.btb = BranchTargetBuffer(btb_entries, btb_assoc)
        self.ras = ReturnAddressStack(ras_depth)
        self.control_count = 0
        self.cond_count = 0
        self.cond_mispredicts = 0
        self.indirect_mispredicts = 0

    def predict_and_train(self, record: TraceRecord) -> PredictionOutcome:
        """Predict the control instruction in *record*, then train on
        its outcome.  Non-control records raise ``ValueError``."""
        inst = record.inst
        pc = record.pc
        actual_target = record.next_pc
        self.control_count += 1

        if inst.is_branch:
            predicted_taken = self.gshare.predict(pc)
            taken_target = pc + 4 + (inst.imm << 2)
            predicted_target = taken_target if predicted_taken else pc + 4
            self.cond_count += 1
            self.gshare.update(pc, record.taken)
            outcome = PredictionOutcome(predicted_taken, predicted_target, record.taken, actual_target)
            if outcome.mispredicted:
                self.cond_mispredicts += 1
            return outcome

        m = inst.mnemonic
        if m in ("j", "jal"):
            predicted_target = ((pc + 4) & 0xF000_0000) | (inst.target << 2)
            if m == "jal":
                self.ras.push(pc + 4)
            return PredictionOutcome(True, predicted_target, True, actual_target)
        if m == "jalr":
            predicted = self.btb.lookup(pc)
            self.btb.update(pc, actual_target)
            self.ras.push(pc + 4)
            outcome = PredictionOutcome(True, predicted if predicted is not None else pc + 4, True, actual_target)
            if outcome.mispredicted:
                self.indirect_mispredicts += 1
            return outcome
        if m == "jr":
            if inst.rs == 31:  # return: predict through the RAS
                predicted = self.ras.pop()
            else:
                predicted = self.btb.lookup(pc)
                self.btb.update(pc, actual_target)
            outcome = PredictionOutcome(True, predicted if predicted is not None else pc + 4, True, actual_target)
            if outcome.mispredicted:
                self.indirect_mispredicts += 1
            return outcome
        raise ValueError(f"not a control instruction: {m!r}")

    @property
    def direction_accuracy(self) -> float:
        """Conditional-branch direction accuracy (Table 1's metric)."""
        return 1.0 - self.cond_mispredicts / self.cond_count if self.cond_count else 0.0
