"""Early branch misprediction detection (paper §5.3, Figures 5–6).

Of the six PISA conditional branch types, only ``beq``/``bne`` can be
resolved from partial operands: their comparison is a per-bit XOR, so a
*difference* is proven as soon as any examined bit pair differs.  The
sign-testing types (``blez``/``bgtz``/``bltz``/``bgez``) need bit 31,
and proving *equality* (beq predicted taken, or bne predicted
not-taken, being correct) needs all 32 bits.

The key function maps a dynamic branch + its prediction to the number
of low-order operand bits that must be examined before the
misprediction (if any) is detectable.
"""

from __future__ import annotations

#: Result meaning "needs every bit" (the Figure 6 spike at bit 31).
ALL_BITS = 32

_EARLY_TYPES = frozenset({"beq", "bne"})
_SIGN_TYPES = frozenset({"blez", "bgtz", "bltz", "bgez", "bc1t", "bc1f"})


def can_resolve_early(mnemonic: str, predicted_taken: bool) -> bool:
    """Whether this (branch type, prediction) pair can detect a
    misprediction before all operand bits are known.

    ``beq`` predicted **taken** mispredicts when the operands differ —
    detectable at the first differing bit.  ``bne`` predicted
    **not-taken** likewise.  The converse predictions require proving
    equality, which needs every bit, and sign-testing branches need
    bit 31 (paper §5.3).
    """
    if mnemonic == "beq":
        return predicted_taken
    if mnemonic == "bne":
        return not predicted_taken
    return False


def bits_to_detect_mispredict(
    mnemonic: str, rs_val: int, rt_val: int, predicted_taken: bool, actual_taken: bool
) -> int | None:
    """Bits (cumulative from bit 0) needed to detect the misprediction.

    Returns None when the prediction was correct (nothing to detect).
    For a detectable-early case the answer is ``lowest_set_bit(rs ^ rt)
    + 1``; otherwise :data:`ALL_BITS`.

    Args:
        mnemonic: one of the six conditional branch types.
        rs_val, rt_val: 32-bit operand images (rt is 0 for the
            compare-to-zero types).
        predicted_taken: front-end prediction.
        actual_taken: architectural outcome.
    """
    if predicted_taken == actual_taken:
        return None
    if mnemonic in _SIGN_TYPES:
        return ALL_BITS
    if mnemonic not in _EARLY_TYPES:
        raise ValueError(f"not a conditional branch: {mnemonic!r}")
    diff = (rs_val ^ rt_val) & 0xFFFFFFFF
    if diff == 0:
        # Operands equal: the misprediction direction required proving
        # equality, which consumes every bit.
        return ALL_BITS
    # Operands differ.  The misprediction is the "predicted equal,
    # actually different" direction exactly when early resolution
    # applies; the first differing bit reveals it.
    if can_resolve_early(mnemonic, predicted_taken):
        return (diff & -diff).bit_length()
    return ALL_BITS


def detectable_with_bits(
    mnemonic: str, rs_val: int, rt_val: int, predicted_taken: bool, actual_taken: bool, bits: int
) -> bool:
    """Whether the misprediction is detectable using bits [0, bits).

    Convenience wrapper over :func:`bits_to_detect_mispredict` for the
    Figure 6 cumulative curves.
    """
    needed = bits_to_detect_mispredict(mnemonic, rs_val, rt_val, predicted_taken, actual_taken)
    return needed is not None and needed <= bits
