"""Branch target buffer, paper Table 2: 4-way, 512 entries.

Caches taken-branch and jump targets by fetch PC.  Set-associative with
LRU replacement, same recency discipline as the data caches.
"""

from __future__ import annotations


class BranchTargetBuffer:
    """Set-associative PC → target cache."""

    def __init__(self, entries: int = 512, assoc: int = 4) -> None:
        if entries % assoc:
            raise ValueError("entries must be divisible by associativity")
        self.assoc = assoc
        self.num_sets = entries // assoc
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("set count must be a power of two")
        # Each set: list of (tag, target), MRU-first.
        self._sets: list[list[tuple[int, int]]] = [[] for _ in range(self.num_sets)]
        self.lookups = 0
        self.hits = 0

    def _locate(self, pc: int) -> tuple[int, int]:
        word = pc >> 2
        return word & (self.num_sets - 1), word >> (self.num_sets.bit_length() - 1)

    def lookup(self, pc: int) -> int | None:
        """Predicted target for the control instruction at *pc*, or None."""
        index, tag = self._locate(pc)
        self.lookups += 1
        ways = self._sets[index]
        for pos, (t, target) in enumerate(ways):
            if t == tag:
                if pos:
                    ways.insert(0, ways.pop(pos))
                self.hits += 1
                return target
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for *pc*."""
        index, tag = self._locate(pc)
        ways = self._sets[index]
        for pos, (t, _) in enumerate(ways):
            if t == tag:
                ways.pop(pos)
                break
        else:
            if len(ways) >= self.assoc:
                ways.pop()
        ways.insert(0, (tag, target))

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
