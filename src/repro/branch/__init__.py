"""Branch-prediction substrate (paper Table 2) and early resolution.

A 64k-entry gshare direction predictor, a 4-way 512-entry BTB, an
8-entry return-address stack, a combined front-end predictor, and the
early-misprediction-detection analysis of paper §5.3 / Figures 5–6.
"""

from repro.branch.btb import BranchTargetBuffer
from repro.branch.early import bits_to_detect_mispredict, can_resolve_early
from repro.branch.gshare import GsharePredictor
from repro.branch.predictor import FrontEndPredictor, PredictionOutcome
from repro.branch.ras import ReturnAddressStack

__all__ = [
    "BranchTargetBuffer",
    "FrontEndPredictor",
    "GsharePredictor",
    "PredictionOutcome",
    "ReturnAddressStack",
    "bits_to_detect_mispredict",
    "can_resolve_early",
]
