"""Phase profiling: per-phase wall time and throughput.

A :class:`PhaseProfiler` accumulates wall-clock seconds per named phase
(``collect.li``, ``simulate.bitslice-2``) plus an optional *items*
count (emulated or simulated instructions) from which it derives
throughput — the host-side instructions-per-second number the ROADMAP's
"fast as the hardware allows" goal is measured by.  The ``--profile``
CLI flag prints :meth:`report`: the top-N hottest phases.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class PhaseStat:
    """Accumulated cost of one phase."""

    name: str
    seconds: float = 0.0
    calls: int = 0
    items: int = 0

    @property
    def items_per_second(self) -> float:
        return self.items / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "seconds": self.seconds,
            "calls": self.calls,
            "items": self.items,
            "items_per_second": self.items_per_second,
        }


class _PhaseContext:
    """Context manager for one timed phase invocation."""

    __slots__ = ("_profiler", "_name", "_items", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._items = 0
        self._t0 = 0.0

    def add_items(self, n: int) -> None:
        """Attribute *n* processed items (instructions) to this phase."""
        self._items += n

    def __enter__(self) -> "_PhaseContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._profiler.add(self._name, time.perf_counter() - self._t0, items=self._items)


class PhaseProfiler:
    """Accumulates wall time and item throughput per named phase."""

    def __init__(self) -> None:
        self.phases: dict[str, PhaseStat] = {}
        self.started_at = time.perf_counter()

    def phase(self, name: str) -> _PhaseContext:
        """Time a block::

            with profiler.phase("simulate.li") as ph:
                stats = simulate(...)
                ph.add_items(stats.instructions)
        """
        return _PhaseContext(self, name)

    def add(self, name: str, seconds: float, items: int = 0, calls: int = 1) -> None:
        stat = self.phases.get(name)
        if stat is None:
            stat = self.phases[name] = PhaseStat(name)
        stat.seconds += seconds
        stat.calls += calls
        stat.items += items

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.phases.values())

    def hottest(self, top_n: int = 10) -> list[PhaseStat]:
        return sorted(self.phases.values(), key=lambda s: s.seconds, reverse=True)[:top_n]

    def report(self, top_n: int = 10) -> str:
        """Human-readable top-N phase table."""
        if not self.phases:
            return "(no profiled phases)"
        total = self.total_seconds or 1e-12
        lines = [f"=== Profile: top {min(top_n, len(self.phases))} of {len(self.phases)} phases ==="]
        lines.append(f"{'phase':<32} {'seconds':>9} {'share':>7} {'calls':>7} {'items/s':>12}")
        for s in self.hottest(top_n):
            rate = f"{s.items_per_second:,.0f}" if s.items else "-"
            lines.append(
                f"{s.name:<32} {s.seconds:>9.3f} {s.seconds / total:>6.1%} {s.calls:>7} {rate:>12}"
            )
        lines.append(f"{'total':<32} {total:>9.3f}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {name: s.to_dict() for name, s in sorted(self.phases.items())}

    def merge_dict(self, payload: dict) -> None:
        """Fold another profiler's :meth:`to_dict` into this one.

        Used by the sweep tracer to accumulate worker-side phase
        samples shipped home with results.  Malformed entries are
        skipped — telemetry must never fail a sweep.
        """
        for name, stat in payload.items():
            if not isinstance(stat, dict):
                continue
            try:
                self.add(
                    str(name),
                    float(stat.get("seconds", 0.0)),
                    items=int(stat.get("items", 0)),
                    calls=int(stat.get("calls", 1)),
                )
            except (TypeError, ValueError):
                continue

    def publish(self, registry) -> None:
        """Mirror every phase into a metrics registry (``profile.*``)."""
        for name, s in self.phases.items():
            registry.timer(f"profile.{name}.wall", help="phase wall time").add(s.seconds, s.calls)
            if s.items:
                registry.counter(f"profile.{name}.items", help="items processed").inc(s.items)


__all__ = ["PhaseProfiler", "PhaseStat"]
