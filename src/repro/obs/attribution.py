"""Cycle-accounting CPI stacks.

The metrics layer records *what* happened (``sim.*`` counters, cycle
events); this module records *where the cycles went*.  Every committed
instruction's commit-to-commit gap is attributed to exactly one cause,
so the per-component cycle counts decompose total cycles the way the
paper's Figures 10–12 arguments do — and the decomposition carries an
enforced invariant: **the components sum exactly to the measured
cycles** (:meth:`CPIStack.check`), the property that makes a CPI stack
trustworthy for regression triage instead of merely suggestive.

Accounting model (timestamp simulator)
--------------------------------------

Commit times are monotone, so per-window cycles telescope into
per-instruction deltas ``commit[i] - commit[i-1]``.  While scheduling
instruction *i* the simulator records bounded *claims* — cycles it can
prove were spent waiting on a specific mechanism (a mispredict
redirect, RUU/LSQ occupancy, store-address disambiguation, a way
mispredict's verify+replay, cache-miss latency, a carry/shift chain).
At commit the delta is split across the claims in a fixed priority
order (:data:`CPI_COMPONENTS` order), each claim clamped to the cycles
actually remaining; whatever no mechanism claims is *base* — issue,
bandwidth and single-cycle execution making normal progress.  Clamping
is what turns overlapping per-mechanism waits (a load can wait on
disambiguation *and* hide an I-cache miss underneath) into a stack that
still sums exactly.

Branch-recovery cycles are *net* of §5.3 early resolution: the redirect
claim measures blocked fetch from the actual (possibly early) resolve
time, and the cycles early resolution saved are reported separately in
``extra["early_branch_saved_cycles"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The stack components, in waterfall (attribution-priority) order.
#: ``base`` is last: it absorbs whatever no mechanism claimed.
#: Each entry: (key, SimStats field, dotted metric, description).
CPI_COMPONENTS: tuple[tuple[str, str, str, str], ...] = (
    (
        "branch_recovery",
        "cpi_branch_recovery",
        "sim.cpi.branch_recovery",
        "fetch blocked on mispredict resolution (net of §5.3 early resolution)",
    ),
    (
        "ruu_stall",
        "cpi_ruu_stall",
        "sim.cpi.ruu_stall",
        "dispatch blocked on RUU occupancy",
    ),
    (
        "lsq_stall",
        "cpi_lsq_stall",
        "sim.cpi.lsq_stall",
        "dispatch blocked on LSQ occupancy",
    ),
    (
        "lsd_wait",
        "cpi_lsd_wait",
        "sim.cpi.lsd_wait",
        "loads held for older-store address disambiguation (§5.1)",
    ),
    (
        "ptm_replay",
        "cpi_ptm_replay",
        "sim.cpi.ptm_replay",
        "partial-tag way-mispredict verification + replay penalty (§5.2)",
    ),
    (
        "memory",
        "cpi_memory",
        "sim.cpi.memory",
        "cache/memory latency beyond the L1 hit path (I-side and D-side)",
    ),
    (
        "slice_wait",
        "cpi_slice_wait",
        "sim.cpi.slice_wait",
        "inter-slice carry/shift-chain and slice-operand waits (Figure 8)",
    ),
    (
        "base",
        "cpi_base",
        "sim.cpi.base",
        "issue/commit bandwidth and single-cycle execution (residual)",
    ),
)

#: Component keys in waterfall order.
COMPONENT_KEYS: tuple[str, ...] = tuple(c[0] for c in CPI_COMPONENTS)

#: Component key → SimStats field name.
STAT_FIELDS: dict[str, str] = {c[0]: c[1] for c in CPI_COMPONENTS}

#: Component key → dotted metric name (the ``sim.cpi.*`` namespace).
METRIC_NAMES: dict[str, str] = {c[0]: c[2] for c in CPI_COMPONENTS}

#: Component key → human description.
DESCRIPTIONS: dict[str, str] = {c[0]: c[3] for c in CPI_COMPONENTS}

#: One-character glyph per component for ASCII stacked bars.
GLYPHS: dict[str, str] = {
    "base": "#",
    "branch_recovery": "B",
    "ruu_stall": "R",
    "lsq_stall": "Q",
    "lsd_wait": "D",
    "ptm_replay": "W",
    "memory": "M",
    "slice_wait": "S",
}


class AttributionError(AssertionError):
    """A CPI stack failed its components-sum-to-cycles invariant."""


def attribute_delta(stats, delta: int, claims: tuple[int, ...]) -> None:
    """Split one commit-to-commit *delta* across *claims* into *stats*.

    *claims* are the non-base claim amounts in :data:`CPI_COMPONENTS`
    order (branch, ruu, lsq, lsd, ptm, memory, slice).  Each is clamped
    to the cycles still unattributed; the remainder is base.  This is
    the out-of-line reference form of the waterfall the simulator's hot
    loop inlines — kept for reuse by other models and by tests.
    """
    rem = delta
    for (key, fld, _, _), claim in zip(CPI_COMPONENTS, claims):
        if claim <= 0 or rem <= 0:
            continue
        take = claim if claim < rem else rem
        setattr(stats, fld, getattr(stats, fld) + take)
        rem -= take
    if rem > 0:
        stats.cpi_base += rem


def split_claims(delta: int, claims: tuple[int, ...]) -> list[int]:
    """The :func:`attribute_delta` waterfall, returned instead of folded.

    Splits one commit-to-commit *delta* across *claims* (non-base
    amounts in :data:`CPI_COMPONENTS` order) with the identical clamp
    semantics and returns the per-component amounts as a list in
    :data:`COMPONENT_KEYS` order, base last.  Used by the guest
    profiler's per-PC CPI stacks, which must decompose the same cycles
    the ``SimStats`` stack does.
    """
    parts = [0] * len(CPI_COMPONENTS)
    rem = delta
    for i, claim in enumerate(claims):
        if claim <= 0 or rem <= 0:
            continue
        take = claim if claim < rem else rem
        parts[i] = take
        rem -= take
    if rem > 0:
        parts[-1] = rem
    return parts


@dataclass
class CPIStack:
    """One run's cycle decomposition, with the exact-sum invariant."""

    config_name: str = ""
    benchmark: str = ""
    instructions: int = 0
    cycles: int = 0
    #: component key → attributed cycles (all keys always present).
    components: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key in COMPONENT_KEYS:
            self.components.setdefault(key, 0)

    # ---------------------------------------------------------- builders

    @classmethod
    def from_stats(cls, stats, benchmark: str = "") -> "CPIStack":
        """Build from a :class:`repro.timing.stats.SimStats`."""
        return cls(
            config_name=stats.config_name,
            benchmark=benchmark,
            instructions=stats.instructions,
            cycles=stats.cycles,
            components={key: getattr(stats, fld) for key, fld in STAT_FIELDS.items()},
        )

    @classmethod
    def from_metrics_dump(cls, dump: dict, config_name: str = "") -> "CPIStack":
        """Build from a metrics dump (``--metrics-out``) payload.

        Reads the ``sim.cpi.*`` counters plus ``sim.cycles`` and
        ``sim.instructions``; raises ``ValueError`` when the dump
        carries no attribution counters (pre-CPI artifact).
        """
        metrics = dump.get("metrics", {})
        if METRIC_NAMES["base"] not in metrics:
            raise ValueError("metrics dump has no sim.cpi.* attribution counters")

        def value(name: str) -> int:
            entry = metrics.get(name)
            return int(entry["value"]) if entry else 0

        return cls(
            config_name=config_name,
            instructions=value("sim.instructions"),
            cycles=value("sim.cycles"),
            components={key: value(metric) for key, metric in METRIC_NAMES.items()},
        )

    # --------------------------------------------------------- invariant

    @property
    def total(self) -> int:
        """Sum of the attributed components."""
        return sum(self.components.values())

    def check(self) -> "CPIStack":
        """Enforce components == cycles; returns self for chaining.

        Raises:
            AttributionError: the stack does not sum to the cycle count.
        """
        if self.total != self.cycles:
            detail = ", ".join(f"{k}={v}" for k, v in self.components.items() if v)
            raise AttributionError(
                f"CPI stack for {self.config_name or '?'}"
                f"{f'/{self.benchmark}' if self.benchmark else ''} sums to "
                f"{self.total}, expected cycles={self.cycles} ({detail})"
            )
        return self

    # -------------------------------------------------------------- math

    def cpi(self, key: str) -> float:
        """Per-instruction cycles attributed to one component."""
        return self.components[key] / self.instructions if self.instructions else 0.0

    @property
    def total_cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def fraction(self, key: str) -> float:
        """Share of total cycles attributed to one component."""
        return self.components[key] / self.cycles if self.cycles else 0.0

    def merge(self, other: "CPIStack") -> "CPIStack":
        """Cycle-weighted aggregate of two windows (commutative)."""
        return CPIStack(
            config_name=self.config_name
            if self.config_name == other.config_name
            else f"{self.config_name}+{other.config_name}",
            benchmark=self.benchmark if self.benchmark == other.benchmark else "*",
            instructions=self.instructions + other.instructions,
            cycles=self.cycles + other.cycles,
            components={
                key: self.components[key] + other.components[key]
                for key in COMPONENT_KEYS
            },
        )

    # ------------------------------------------------------------ export

    def to_dict(self) -> dict:
        return {
            "config_name": self.config_name,
            "benchmark": self.benchmark,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "components": dict(self.components),
            "cpi": {key: self.cpi(key) for key in COMPONENT_KEYS},
        }

    def render(self, width: int = 60) -> str:
        """One stack as an ASCII bar plus a per-component legend."""
        label = self.config_name or "?"
        if self.benchmark:
            label = f"{self.benchmark}/{label}"
        lines = [
            f"{label}: CPI {self.total_cpi:.3f} "
            f"({self.cycles} cycles / {self.instructions} instructions)",
            "  [" + stack_bar(self, width) + "]",
        ]
        for key in COMPONENT_KEYS:
            cycles = self.components[key]
            if not cycles:
                continue
            lines.append(
                f"  {GLYPHS[key]} {key:<16s} {self.cpi(key):7.3f} CPI "
                f"({self.fraction(key):6.1%})  {DESCRIPTIONS[key]}"
            )
        return "\n".join(lines)


def stack_bar(stack: CPIStack, width: int = 60) -> str:
    """The stack as one fixed-width run of component glyphs."""
    if not stack.cycles:
        return " " * width
    cells: list[str] = []
    carry = 0.0
    for key in COMPONENT_KEYS:
        exact = stack.fraction(key) * width + carry
        n = int(round(exact))
        carry = exact - n
        cells.append(GLYPHS[key] * n)
    bar = "".join(cells)[:width]
    return bar.ljust(width)


def render_stacks(stacks: list[CPIStack], width: int = 60, title: str = "") -> str:
    """Several stacks as aligned bars on a shared CPI scale.

    The bar length is proportional to each stack's total CPI (worst
    stack spans *width*), so both the mix *and* the magnitude compare
    across configurations — the Figure 11 reading of a CPI stack.
    """
    if not stacks:
        return "(no CPI stacks)"
    worst = max(s.total_cpi for s in stacks) or 1.0
    label_w = max(
        len(f"{s.benchmark}/{s.config_name}" if s.benchmark else s.config_name)
        for s in stacks
    )
    lines = []
    if title:
        lines.append(title)
    for s in stacks:
        label = f"{s.benchmark}/{s.config_name}" if s.benchmark else s.config_name
        bar_w = max(1, int(round(width * s.total_cpi / worst))) if s.cycles else 0
        lines.append(f"{label:<{label_w}}  {s.total_cpi:6.3f} |{stack_bar(s, bar_w)}")
    legend = "  ".join(f"{GLYPHS[k]}={k}" for k in COMPONENT_KEYS)
    lines.append(f"{'':<{label_w}}  legend: {legend}")
    return "\n".join(lines)


__all__ = [
    "AttributionError",
    "COMPONENT_KEYS",
    "CPI_COMPONENTS",
    "CPIStack",
    "DESCRIPTIONS",
    "GLYPHS",
    "METRIC_NAMES",
    "STAT_FIELDS",
    "attribute_delta",
    "render_stacks",
    "split_claims",
    "stack_bar",
]
