"""Bounded cycle-event trace.

The timing simulator emits typed events (fetch, dispatch, per-slice
completion, commit, replay, early LSQ release, PTM way mispredict) into
an :class:`EventTrace` — a ring buffer so long sweeps record the most
recent window at O(1) cost instead of growing without bound.  The same
stream backs three consumers:

* the ASCII pipeline viewer (:func:`repro.timing.pipeview.events_to_timeline`);
* JSONL export (one schema-validated event per line, diffable);
* Chrome trace-event format (:func:`write_chrome_trace`), loadable in
  Perfetto / ``chrome://tracing``: instruction lifetimes as duration
  slices, anomalies (replays, way mispredicts, early releases) as
  instant events, and periodic CPI-stack samples as counter tracks.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

#: Event kinds, in pipeline order.  Kept as plain strings (not an Enum)
#: so the hot emit path and the JSONL form are the same object.
FETCH = "fetch"
DISPATCH = "dispatch"
SLICE_COMPLETE = "slice_complete"
COMMIT = "commit"
REPLAY = "replay"
EARLY_RELEASE = "early_release"
WAY_MISPREDICT = "way_mispredict"
#: Periodic cumulative CPI-stack sample (args: component → cycles);
#: rendered as a Perfetto counter track.
CPI_SAMPLE = "cpi_sample"

EVENT_KINDS = (
    FETCH, DISPATCH, SLICE_COMPLETE, COMMIT, REPLAY, EARLY_RELEASE, WAY_MISPREDICT,
    CPI_SAMPLE,
)

#: JSONL schema: required fields and their types, optional args mapping.
EVENT_SCHEMA = {
    "kind": str,     # one of EVENT_KINDS
    "cycle": int,    # simulated cycle the event occurred
    "seq": int,      # dynamic instruction sequence number (1-based)
    "pc": int,       # program counter of the instruction
}

#: Default ring capacity used by ``--trace-events`` (bounds sweep memory).
DEFAULT_CAPACITY = 262_144


@dataclass(frozen=True, slots=True)
class CycleEvent:
    """One typed pipeline event."""

    kind: str
    cycle: int
    seq: int
    pc: int
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "cycle": self.cycle, "seq": self.seq, "pc": self.pc}
        if self.args:
            out["args"] = self.args
        return out


class EventTrace:
    """Ring buffer of :class:`CycleEvent`.

    *capacity* ``None`` records everything (the pipeline viewer's mode);
    an integer bounds memory and silently drops the oldest events,
    counted in :attr:`dropped`.
    """

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None (unbounded)")
        self.capacity = capacity
        self._events: deque[CycleEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, kind: str, cycle: int, seq: int, pc: int, args: dict | None = None) -> None:
        self.emitted += 1
        self._events.append(CycleEvent(kind, cycle, seq, pc, args if args is not None else {}))

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[CycleEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0


# ------------------------------------------------------------------ JSONL

def to_jsonl_lines(events: Iterable[CycleEvent]) -> Iterator[str]:
    for e in events:
        yield json.dumps(e.to_dict(), sort_keys=True)


def write_jsonl(events: Iterable[CycleEvent], path: str | Path) -> int:
    """Write one event per line; returns the number of lines written."""
    n = 0
    with open(path, "w") as fh:
        for line in to_jsonl_lines(events):
            fh.write(line + "\n")
            n += 1
    return n


def validate_event(obj: dict) -> None:
    """Validate one decoded JSONL event against :data:`EVENT_SCHEMA`.

    Raises:
        ValueError: missing/ill-typed required field, unknown kind, or
            a non-dict ``args``.
    """
    if not isinstance(obj, dict):
        raise ValueError("event must be a JSON object")
    for key, typ in EVENT_SCHEMA.items():
        if key not in obj:
            raise ValueError(f"event missing required field {key!r}")
        if not isinstance(obj[key], typ) or isinstance(obj[key], bool):
            raise ValueError(f"event field {key!r} must be {typ.__name__}, got {obj[key]!r}")
    if obj["kind"] not in EVENT_KINDS:
        raise ValueError(f"unknown event kind {obj['kind']!r}")
    if "args" in obj and not isinstance(obj["args"], dict):
        raise ValueError("event 'args' must be an object")


def validate_jsonl_file(path: str | Path) -> int:
    """Validate every line of a JSONL event file; returns the line count."""
    n = 0
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                validate_event(json.loads(line))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            n += 1
    return n


# ----------------------------------------------------------- Chrome trace

def _stream_to_chrome_events(
    events: Iterable[CycleEvent], pid: int, lanes: int
) -> list[dict]:
    """Chrome events for one process's stream, on its own ``pid`` row.

    Fetch→commit pairing is private to the stream (keyed by this
    stream's ``seq`` values only) and every lane ``tid`` lives under
    *pid*, so two processes' events can never pair or collide with each
    other when merged into one trace.
    """
    fetches: dict[int, CycleEvent] = {}
    trace_events: list[dict] = []
    for e in events:
        if e.kind == FETCH:
            fetches[e.seq] = e
        elif e.kind == COMMIT:
            start = fetches.pop(e.seq, None)
            begin = start.cycle if start is not None else e.cycle
            name = (start.args.get("mnemonic") if start is not None else None) or "inst"
            trace_events.append(
                {
                    "name": name,
                    "cat": "instruction",
                    "ph": "X",
                    "ts": begin,
                    "dur": max(1, e.cycle - begin),
                    "pid": pid,
                    "tid": 1 + (e.seq % lanes),
                    "args": {"seq": e.seq, "pc": e.pc, **e.args},
                }
            )
        elif e.kind == CPI_SAMPLE:
            trace_events.append(
                {
                    "name": "cpi_stack",
                    "cat": "attribution",
                    "ph": "C",
                    "ts": e.cycle,
                    "pid": pid,
                    "args": dict(e.args),
                }
            )
        elif e.kind in (REPLAY, EARLY_RELEASE, WAY_MISPREDICT):
            trace_events.append(
                {
                    "name": e.kind,
                    "cat": "anomaly",
                    "ph": "i",
                    "s": "t",
                    "ts": e.cycle,
                    "pid": pid,
                    "tid": 1 + (e.seq % lanes),
                    "args": {"seq": e.seq, "pc": e.pc, **e.args},
                }
            )
    return trace_events


def to_chrome_trace(events: Iterable[CycleEvent], lanes: int = 16) -> dict:
    """Convert the event stream to Chrome trace-event format.

    Instruction lifetimes (fetch → commit) become ``"X"`` duration
    slices named by mnemonic, spread over *lanes* virtual threads so
    overlapping instructions render as parallel tracks (the paper's
    Figure 1 view); anomaly events become ``"i"`` instants; CPI-stack
    samples become a ``"C"`` counter track (one series per attribution
    component).  One simulated cycle maps to one microsecond of trace
    time.

    For a *single* stream this is the whole story; to combine streams
    from several processes use :func:`merge_chrome_traces`, which keys
    lanes by (process, lane) instead of letting ``seq % lanes`` collide
    across processes.
    """
    return {
        "traceEvents": _stream_to_chrome_events(events, pid=1, lanes=lanes),
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "1 ts = 1 simulated cycle"},
    }


def merge_chrome_traces(streams: dict[str, Iterable[CycleEvent]], lanes: int = 16) -> dict:
    """Merge per-process event streams into one Chrome trace.

    *streams* maps a process label (``"orchestrator"``,
    ``"worker-1234"``) to that process's events.  Each process gets its
    own ``pid`` row (named via ``"M"`` metadata) and its own private
    lane space, fixing the collision the single-stream form would
    produce: two processes' events with the same ``seq`` used to land
    on the same (pid, tid) lane and pair fetch/commit across processes.
    """
    trace_events: list[dict] = []
    for pid, (process, events) in enumerate(sorted(streams.items()), start=1):
        trace_events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": process}}
        )
        trace_events.extend(_stream_to_chrome_events(events, pid=pid, lanes=lanes))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "1 ts = 1 simulated cycle"},
    }


def write_chrome_trace(events: Iterable[CycleEvent], path: str | Path, lanes: int = 16) -> int:
    """Write a Perfetto-loadable JSON trace; returns the slice count."""
    payload = to_chrome_trace(events, lanes=lanes)
    # sort_keys: byte-stable output so trace diffs and golden files only
    # change when the events do.
    Path(path).write_text(json.dumps(payload, sort_keys=True))
    return len(payload["traceEvents"])


__all__ = [
    "COMMIT",
    "CPI_SAMPLE",
    "CycleEvent",
    "DEFAULT_CAPACITY",
    "DISPATCH",
    "EARLY_RELEASE",
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "EventTrace",
    "FETCH",
    "REPLAY",
    "merge_chrome_traces",
    "SLICE_COMPLETE",
    "WAY_MISPREDICT",
    "to_chrome_trace",
    "to_jsonl_lines",
    "validate_event",
    "validate_jsonl_file",
    "write_chrome_trace",
    "write_jsonl",
]
