"""Sweep-wide distributed tracing: spans across orchestrator, workers, cells.

The supervised sweep orchestrator (:mod:`repro.experiments.supervisor`)
is a small distributed system — an orchestrator process, a pool of
spawned workers, a crash-safe journal — and ``sweep.supervisor.*``
counters alone cannot answer *where the time went*: which cells
straggled, which workers died mid-cell, what a retry storm cost, what
the trace cache actually saved.  This module is the span substrate that
answers those questions, applying the uops.info discipline of
measuring the measurement infrastructure itself:

* a :class:`Span` is one timed operation (``sweep.run``, a cell
  attempt, a journal replay, a trace collection) with a stable
  ``trace_id``/``span_id``/``parent_id`` lineage, the *process* that
  produced it, and a *lane* for rendering;
* a :class:`Tracer` records spans in one process.  The orchestrator
  owns the root; workers run their own tracer, **adopt** the span
  context the orchestrator sends with each task, and ship their
  finished spans (plus phase-profiler samples) back over the existing
  checksummed result transport, where the orchestrator **ingests**
  them into a single merged timeline;
* exports mirror the cycle-event stream's discipline: a JSONL span log
  (one schema-validated object per line, see :func:`validate_span`)
  and a Perfetto-loadable Chrome trace
  (:func:`spans_to_chrome_trace`) with one ``pid`` per process and one
  lane (``tid``) per (process, lane) pair — one lane per worker.

Tracing is **off by default**: every instrumentation point is a single
``active_tracer() is None`` check, the same near-zero-overhead contract
as :func:`repro.obs.session.active_session`.  Wall-clock timestamps use
``time.time()`` so spans from different processes on the same host
merge onto one timeline.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from collections import deque
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.profiler import PhaseProfiler

#: Span-log schema version (validated line by line, like cycle events).
SPAN_FORMAT = 1

#: Span lifecycle statuses.
RUNNING = "running"      # begun, not yet finished (crash leaves these)
OK = "ok"                # finished successfully
ERROR = "error"          # finished with a failure attached
MARK = "mark"            # zero-duration annotation (an instant)

SPAN_STATUSES = (RUNNING, OK, ERROR, MARK)

#: Required JSONL fields and their types (``float`` accepts ints).
SPAN_SCHEMA = {
    "name": str,
    "category": str,
    "trace_id": str,
    "span_id": str,
    "process": str,
    "start": float,
    "status": str,
}

#: Bound on retained spans per tracer; a sweep emits a handful of spans
#: per cell, so this covers grids far beyond anything the CLI runs.
DEFAULT_SPAN_CAPACITY = 262_144

#: Default process label for the orchestrating process.
ORCHESTRATOR = "orchestrator"


def new_trace_id() -> str:
    """A fresh sweep-wide trace identity."""
    return uuid.uuid4().hex[:16]


def worker_process_label(pid: int | None = None) -> str:
    """Canonical process label for a worker (one Perfetto lane group)."""
    return f"worker-{os.getpid() if pid is None else pid}"


@dataclass
class Span:
    """One timed operation in the sweep timeline."""

    name: str
    category: str
    trace_id: str
    span_id: str
    parent_id: str | None
    process: str
    start: float                  # unix seconds (cross-process clock)
    end: float | None = None
    status: str = RUNNING
    lane: int = 0
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "category": self.category,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "process": self.process,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "lane": self.lane,
        }
        if self.args:
            out["args"] = self.args
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        validate_span(payload)
        return cls(
            name=payload["name"],
            category=payload["category"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            process=payload["process"],
            start=float(payload["start"]),
            end=None if payload.get("end") is None else float(payload["end"]),
            status=payload["status"],
            lane=int(payload.get("lane", 0)),
            args=dict(payload.get("args", {})),
        )


class Tracer:
    """Per-process span recorder with cross-process context hand-off.

    The orchestrator's tracer is process-global
    (:func:`start_tracing` / :func:`active_tracer`); worker processes
    build their own, :meth:`adopt` the ``(trace_id, parent_span_id)``
    context that rides with each dispatched task, and :meth:`drain`
    their spans into the result payload for the orchestrator to
    :meth:`ingest`.
    """

    def __init__(
        self,
        process: str = ORCHESTRATOR,
        trace_id: str | None = None,
        capacity: int | None = DEFAULT_SPAN_CAPACITY,
        clock=time.time,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None (unbounded)")
        self.process = process
        self.trace_id = trace_id or new_trace_id()
        self.clock = clock
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.emitted = 0
        #: Implicit parent for spans begun without an explicit one (the
        #: sweep root in the orchestrator, the task span in a worker).
        self.default_parent: str | None = None
        #: Worker-side phase samples that ship home with the spans.
        self.profiler = PhaseProfiler()
        self._seq = itertools.count(1)

    # ------------------------------------------------------------ recording

    def _new_id(self) -> str:
        return f"{self.process}:{next(self._seq)}"

    def begin(
        self,
        name: str,
        category: str = "span",
        parent: str | None = None,
        lane: int = 0,
        **args,
    ) -> Span:
        """Open a span; it is recorded when :meth:`finish` closes it."""
        return Span(
            name=name,
            category=category,
            trace_id=self.trace_id,
            span_id=self._new_id(),
            parent_id=parent if parent is not None else self.default_parent,
            process=self.process,
            start=self.clock(),
            lane=lane,
            args=dict(args),
        )

    def finish(self, span: Span, status: str = OK, **args) -> Span:
        """Close *span* and append it to the log."""
        span.end = self.clock()
        span.status = status
        if args:
            span.args.update(args)
        self._append(span)
        return span

    def mark(
        self,
        name: str,
        category: str = "mark",
        parent: str | None = None,
        lane: int = 0,
        **args,
    ) -> Span:
        """Record a zero-duration annotation (a Perfetto instant)."""
        span = self.begin(name, category=category, parent=parent, lane=lane, **args)
        span.end = span.start
        span.status = MARK
        self._append(span)
        return span

    def record(
        self,
        name: str,
        category: str = "span",
        start: float | None = None,
        end: float | None = None,
        parent: str | None = None,
        lane: int = 0,
        status: str = OK,
        **args,
    ) -> Span:
        """Record an already-timed span (e.g. a journal replay hit)."""
        now = self.clock()
        span = self.begin(name, category=category, parent=parent, lane=lane, **args)
        span.start = now if start is None else start
        span.end = span.start if end is None else end
        span.status = status
        self._append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "span",
        parent: str | None = None,
        lane: int = 0,
        **args,
    ):
        """Context manager: ``ok`` on success, ``error`` on exception."""
        span = self.begin(name, category=category, parent=parent, lane=lane, **args)
        try:
            yield span
        except BaseException as exc:
            self.finish(span, status=ERROR, error=type(exc).__name__)
            raise
        else:
            self.finish(span)

    def _append(self, span: Span) -> None:
        self.emitted += 1
        self._spans.append(span)

    # -------------------------------------------------------- cross-process

    def context(self, span: Span | None = None) -> tuple[str, str | None]:
        """The ``(trace_id, parent_span_id)`` context to hand a worker."""
        return (self.trace_id, span.span_id if span is not None else self.default_parent)

    def adopt(self, ctx: tuple[str, str | None] | None) -> None:
        """Join the trace a context names (worker side of the hand-off)."""
        if ctx is None:
            return
        trace_id, parent = ctx
        self.trace_id = trace_id
        self.default_parent = parent

    def drain(self) -> dict:
        """Ship-home payload: finished spans + phase samples, then reset.

        The span dicts are plain JSON-compatible objects, so they ride
        inside the supervised pool's pickled (and checksummed) result
        transport without any new wire format.
        """
        payload = {
            "spans": [span.to_dict() for span in self._spans],
            "phases": self.profiler.to_dict(),
        }
        self._spans.clear()
        self.profiler = PhaseProfiler()
        return payload

    def ingest(self, payload: dict | None) -> int:
        """Merge a worker's :meth:`drain` payload into this timeline.

        Malformed span dicts are dropped (counted in the return value's
        complement), never raised — telemetry must not fail a sweep.
        Returns the number of spans accepted.
        """
        if not payload:
            return 0
        accepted = 0
        for obj in payload.get("spans", ()):
            try:
                self._append(Span.from_dict(obj))
                accepted += 1
            except (ValueError, KeyError, TypeError):
                continue
        phases = payload.get("phases")
        if isinstance(phases, dict):
            self.profiler.merge_dict(phases)
        return accepted

    # --------------------------------------------------------------- access

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def spans(
        self, category: str | None = None, status: str | None = None
    ) -> list[Span]:
        """Recorded spans, optionally filtered."""
        return [
            s
            for s in self._spans
            if (category is None or s.category == category)
            and (status is None or s.status == status)
        ]

    def stats(self) -> dict:
        """Manifest block describing this trace."""
        return {
            "trace_id": self.trace_id,
            "process": self.process,
            "spans": self.emitted,
            "dropped": self.dropped,
            "processes": sorted({s.process for s in self._spans}),
        }


# ----------------------------------------------------------- global tracer

_active: Tracer | None = None


def start_tracing(process: str = ORCHESTRATOR, **kwargs) -> Tracer:
    """Activate a process-global tracer (replacing any existing one)."""
    global _active
    _active = Tracer(process=process, **kwargs)
    return _active


def end_tracing() -> Tracer | None:
    """Deactivate and return the current tracer."""
    global _active
    tracer, _active = _active, None
    return tracer


def active_tracer() -> Tracer | None:
    """The current tracer, or ``None`` when tracing is off (default)."""
    return _active


# ------------------------------------------------------------------- JSONL

def validate_span(obj: dict) -> None:
    """Validate one decoded span against :data:`SPAN_SCHEMA`.

    Raises:
        ValueError: missing/ill-typed required field, unknown status,
            a non-numeric/absent-but-required timestamp, an ``end``
            before ``start``, or a mark whose duration is nonzero.
    """
    if not isinstance(obj, dict):
        raise ValueError("span must be a JSON object")
    for key, typ in SPAN_SCHEMA.items():
        if key not in obj:
            raise ValueError(f"span missing required field {key!r}")
        value = obj[key]
        if typ is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"span field {key!r} must be a number, got {value!r}")
        elif not isinstance(value, typ):
            raise ValueError(f"span field {key!r} must be {typ.__name__}, got {value!r}")
    if obj["status"] not in SPAN_STATUSES:
        raise ValueError(f"unknown span status {obj['status']!r}")
    parent = obj.get("parent_id")
    if parent is not None and not isinstance(parent, str):
        raise ValueError("span 'parent_id' must be a string or null")
    end = obj.get("end")
    if end is not None:
        if not isinstance(end, (int, float)) or isinstance(end, bool):
            raise ValueError(f"span 'end' must be a number, got {end!r}")
        if end < obj["start"]:
            raise ValueError("span 'end' precedes 'start'")
        if obj["status"] == MARK and end != obj["start"]:
            raise ValueError("mark spans must have zero duration")
    elif obj["status"] in (OK, ERROR, MARK):
        raise ValueError(f"{obj['status']} span must carry an 'end' timestamp")
    if "lane" in obj and (not isinstance(obj["lane"], int) or isinstance(obj["lane"], bool)):
        raise ValueError("span 'lane' must be an integer")
    if "args" in obj and not isinstance(obj["args"], dict):
        raise ValueError("span 'args' must be an object")


def to_jsonl_lines(spans: Iterable[Span]) -> Iterator[str]:
    for span in spans:
        yield json.dumps(span.to_dict(), sort_keys=True)


def write_spans_jsonl(spans: Iterable[Span], path: str | Path) -> int:
    """Write one span per line (sorted by start time); returns the count."""
    ordered = sorted(spans, key=lambda s: (s.start, s.span_id))
    n = 0
    with open(path, "w") as fh:
        for line in to_jsonl_lines(ordered):
            fh.write(line + "\n")
            n += 1
    return n


def validate_spans_file(path: str | Path) -> int:
    """Validate every line of a span JSONL file; returns the line count."""
    n = 0
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                validate_span(json.loads(line))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            n += 1
    return n


def load_spans_jsonl(path: str | Path) -> list[Span]:
    """Read a span log back into :class:`Span` objects (validated)."""
    spans = []
    with open(path) as fh:
        for line in fh:
            if line.strip():
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------- Chrome trace

def spans_to_chrome_trace(spans: Iterable[Span]) -> dict:
    """Convert spans to Chrome trace-event format for Perfetto.

    Processes map to ``pid`` rows (orchestrator first, then workers in
    name order) and lanes to ``tid`` rows keyed by **(process, lane)**
    — so events from different processes can never collide on a lane,
    and every worker renders as its own track group.  Completed spans
    become ``"X"`` duration slices, marks become ``"i"`` instants, and
    spans a crash left unfinished become slices flagged
    ``unfinished: true`` that extend to the end of the trace.
    """
    spans = sorted(spans, key=lambda s: (s.start, s.span_id))
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    processes = sorted(
        {s.process for s in spans}, key=lambda p: (p != ORCHESTRATOR, p)
    )
    pid_of = {proc: i + 1 for i, proc in enumerate(processes)}
    t0 = min(s.start for s in spans)
    t_end = max(s.end if s.end is not None else s.start for s in spans)

    def us(t: float) -> float:
        return round((t - t0) * 1e6, 1)

    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": proc},
        }
        for proc, pid in pid_of.items()
    ]
    seen_lanes: set[tuple[str, int]] = set()
    for s in spans:
        pid = pid_of[s.process]
        tid = s.lane + 1
        if (s.process, s.lane) not in seen_lanes:
            seen_lanes.add((s.process, s.lane))
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"lane {s.lane}"},
                }
            )
        args = {"span_id": s.span_id, "status": s.status, **s.args}
        if s.parent_id:
            args["parent_id"] = s.parent_id
        if s.status == MARK:
            trace_events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "i",
                    "s": "t",
                    "ts": us(s.start),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            continue
        end = s.end
        if end is None:
            end = t_end
            args["unfinished"] = True
        trace_events.append(
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "ts": us(s.start),
                "dur": max(round((end - s.start) * 1e6, 1), 1.0),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "span_format": SPAN_FORMAT,
            "time_unit": "1 ts = 1 microsecond since trace start",
            "trace_id": spans[0].trace_id,
        },
    }


def write_span_chrome_trace(spans: Iterable[Span], path: str | Path) -> int:
    """Write a Perfetto-loadable span timeline; returns the event count."""
    payload = spans_to_chrome_trace(spans)
    # sort_keys: byte-stable output so trace diffs and golden files only
    # change when the spans do.
    Path(path).write_text(json.dumps(payload, sort_keys=True))
    return len(payload["traceEvents"])


__all__ = [
    "DEFAULT_SPAN_CAPACITY",
    "ERROR",
    "MARK",
    "OK",
    "ORCHESTRATOR",
    "RUNNING",
    "SPAN_FORMAT",
    "SPAN_SCHEMA",
    "SPAN_STATUSES",
    "Span",
    "Tracer",
    "active_tracer",
    "end_tracing",
    "load_spans_jsonl",
    "new_trace_id",
    "spans_to_chrome_trace",
    "start_tracing",
    "to_jsonl_lines",
    "validate_span",
    "validate_spans_file",
    "worker_process_label",
    "write_span_chrome_trace",
    "write_spans_jsonl",
]
