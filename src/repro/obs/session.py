"""Per-run observability session.

One :class:`ObsSession` ties the metrics registry, the cycle-event
trace, and the phase profiler to a single driver invocation, and
collects the per-run records behind the ``BENCH_<run>.json`` perf
snapshot.  The session is process-global (like the runner's wall-clock
budget) so instrumentation points deep in the stack — ``simulate()``,
trace collection — can report without threading a handle through every
experiment signature; when no session is active every hook is a single
``None`` check, keeping the uninstrumented hot path unchanged.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from repro.obs.events import DEFAULT_CAPACITY, EventTrace
from repro.obs.profiler import PhaseProfiler
from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class RunRecord:
    """One timing-simulation run observed by the session."""

    benchmark: str
    config: str
    instructions: int
    cycles: int
    ipc: float
    wall_seconds: float
    #: Timing-loop implementation that produced the run ("fast" /
    #: "reference"); empty when the caller predates the fast path.
    timing_mode: str = ""
    #: Emulator interpreter that produced the run's trace ("fast" /
    #: "reference" / "blocks"); empty when unknown (e.g. cache hit
    #: recorded before the dispatch mode was plumbed through).
    dispatch_mode: str = ""

    @property
    def instructions_per_second(self) -> float:
        return self.instructions / self.wall_seconds if self.wall_seconds > 0 else 0.0


class ObsSession:
    """Holds the observability state for one driver run."""

    def __init__(
        self,
        trace_events: bool = False,
        events_capacity: int | None = DEFAULT_CAPACITY,
        heartbeat_interval: float | None = None,
        stream=None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.profiler = PhaseProfiler()
        self.events = EventTrace(events_capacity) if trace_events else None
        self.heartbeat_interval = heartbeat_interval
        self.stream = stream if stream is not None else sys.stderr
        self.runs: list[RunRecord] = []
        self.current_benchmark: str | None = None
        self.collections = 0
        self.cache_hits = 0
        #: dispatch tier → accumulated {"instructions", "wall_seconds"}
        #: across this session's trace collections, so manifests can
        #: report per-tier emulation throughput, not just the aggregate.
        self.dispatch_tiers: dict[str, dict[str, float]] = {}
        self.supervisor: dict | None = None
        self._t0 = time.monotonic()
        self._last_beat = self._t0

    # ------------------------------------------------------------- hooks

    def note_collection(
        self, benchmark: str, records: int, seconds: float, dispatch_mode: str = ""
    ) -> None:
        """Called after one emulator trace collection."""
        self.current_benchmark = benchmark
        self.collections += 1
        self.profiler.add(f"collect.{benchmark}", seconds, items=records)
        self.registry.counter("emulate.instructions", help="emulated trace records").inc(records)
        self.registry.counter("emulate.collections", help="trace collections").inc()
        self.registry.timer("emulate.wall", help="emulator wall time").add(seconds)
        if dispatch_mode:
            tier = self.dispatch_tiers.setdefault(
                dispatch_mode, {"instructions": 0, "wall_seconds": 0.0}
            )
            tier["instructions"] += records
            tier["wall_seconds"] += seconds
            self.registry.counter(
                f"emulate.{dispatch_mode}.instructions",
                help=f"trace records emulated by the {dispatch_mode} tier",
            ).inc(records)
            self.registry.timer(
                f"emulate.{dispatch_mode}.wall",
                help=f"{dispatch_mode}-tier emulator wall time",
            ).add(seconds)
        self.heartbeat(f"collect.{benchmark}")

    def note_cache_hit(self, benchmark: str, records: int, seconds: float) -> None:
        """Called when a collection is served by the persistent cache."""
        self.current_benchmark = benchmark
        self.cache_hits += 1
        self.profiler.add(f"cache.hit.{benchmark}", seconds, items=records)
        self.registry.counter("trace_cache.hits", help="persistent-cache hits").inc()
        self.registry.counter(
            "trace_cache.records", help="trace records served from cache"
        ).inc(records)
        self.registry.timer("trace_cache.load_wall", help="cache load wall time").add(seconds)
        self.heartbeat(f"cache.hit.{benchmark}")

    def note_sweep_progress(
        self, done: int, total: int, failed: int = 0, in_flight: int = 0
    ) -> None:
        """Called by the sweep orchestrator as cells complete.

        This is what makes ``--heartbeat`` useful during ``--jobs``
        sweeps: cells execute inside workers (where no session exists),
        so without an orchestrator-level hook a parallel sweep was
        silent until the end.
        """
        msg = f"sweep {done}/{total} cells"
        if in_flight:
            msg += f", {in_flight} in flight"
        if failed:
            msg += f", {failed} failed"
        self.heartbeat(msg)

    def note_supervisor(self, report) -> None:
        """Called after a supervised sweep finishes; *report* is a
        :class:`~repro.experiments.supervisor.SupervisorReport` (its
        counters were already published into the registry — this keeps
        the structured form for the bench manifest)."""
        self.supervisor = report.to_dict()
        self.heartbeat("sweep.supervised")

    def record_run(
        self, stats, wall_seconds: float, timing_mode: str = "", dispatch_mode: str = ""
    ) -> None:
        """Called after one ``simulate()``; *stats* is a ``SimStats``."""
        benchmark = self.current_benchmark or "?"
        self.runs.append(
            RunRecord(
                benchmark=benchmark,
                config=stats.config_name,
                instructions=stats.instructions,
                cycles=stats.cycles,
                ipc=stats.ipc,
                wall_seconds=wall_seconds,
                timing_mode=timing_mode,
                dispatch_mode=dispatch_mode,
            )
        )
        self.profiler.add(
            f"simulate.{benchmark}", wall_seconds, items=stats.instructions
        )
        stats.publish(self.registry)
        self.registry.counter("sim.runs", help="timing simulations").inc()
        self.registry.timer("sim.wall", help="simulator wall time").add(wall_seconds)
        self.registry.histogram(
            "sim.run_instructions", help="instructions per simulation run"
        ).observe(stats.instructions)
        self.heartbeat(f"simulate.{benchmark}/{stats.config_name}")

    def heartbeat(self, last: str = "") -> None:
        """Print a progress line if the heartbeat interval elapsed."""
        if self.heartbeat_interval is None:
            return
        now = time.monotonic()
        if now - self._last_beat < self.heartbeat_interval:
            return
        self._last_beat = now
        elapsed = now - self._t0
        print(
            f"[obs] {elapsed:.1f}s elapsed — {self.collections} collections, "
            f"{len(self.runs)} simulations{f', last {last}' if last else ''}",
            file=self.stream,
            flush=True,
        )

    # ------------------------------------------------------------ exports

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._t0

    def dispatch_tier_stats(self) -> dict[str, dict]:
        """Per-dispatch-tier emulation throughput (manifest block)."""
        out: dict[str, dict] = {}
        for tier in sorted(self.dispatch_tiers):
            rec = self.dispatch_tiers[tier]
            wall = rec["wall_seconds"]
            out[tier] = {
                "instructions": int(rec["instructions"]),
                "wall_seconds": wall,
                "instructions_per_second": rec["instructions"] / wall if wall > 0 else 0.0,
            }
        return out

    def bench_records(self) -> dict[str, dict]:
        """Per-benchmark perf records for :func:`write_bench_snapshot`."""
        out: dict[str, dict] = {}
        for run in self.runs:
            rec = out.setdefault(
                run.benchmark,
                {"ipc": {}, "wall_seconds": 0.0, "instructions": 0, "runs": 0},
            )
            rec["ipc"][run.config] = run.ipc
            rec["wall_seconds"] += run.wall_seconds
            rec["instructions"] += run.instructions
            rec["runs"] += 1
        for name, rec in out.items():
            collect = self.profiler.phases.get(f"collect.{name}")
            rec["emulate_seconds"] = collect.seconds if collect else 0.0
            rec["instructions_per_second"] = (
                rec["instructions"] / rec["wall_seconds"] if rec["wall_seconds"] > 0 else 0.0
            )
            modes = {r.timing_mode for r in self.runs if r.benchmark == name and r.timing_mode}
            if modes:
                rec["timing_mode"] = modes.pop() if len(modes) == 1 else "mixed"
            dmodes = {
                r.dispatch_mode for r in self.runs if r.benchmark == name and r.dispatch_mode
            }
            if dmodes:
                rec["dispatch_mode"] = dmodes.pop() if len(dmodes) == 1 else "mixed"
        return out

    def finalize_registry(self) -> MetricsRegistry:
        """Fold profiler phases into the registry and return it."""
        self.profiler.publish(self.registry)
        self.registry.gauge("obs.elapsed_seconds", help="session wall time").set(self.elapsed)
        if self.events is not None:
            self.registry.counter("obs.events.emitted", help="cycle events emitted").inc(
                self.events.emitted
            )
            dropped = self.events.dropped
            self.registry.counter("obs.events.dropped", help="events evicted by ring bound").inc(
                dropped
            )
            if dropped:
                print(
                    f"[obs] warning: event ring dropped {dropped} of "
                    f"{self.events.emitted} events (capacity "
                    f"{self.events.capacity}); exported traces cover only "
                    f"the most recent window — raise the capacity for a "
                    f"complete trace",
                    file=self.stream,
                    flush=True,
                )
        return self.registry


_active: ObsSession | None = None


def start_session(**kwargs) -> ObsSession:
    """Activate a new global session (replacing any existing one)."""
    global _active
    _active = ObsSession(**kwargs)
    return _active


def end_session() -> ObsSession | None:
    """Deactivate and return the current session."""
    global _active
    session, _active = _active, None
    return session


def active_session() -> ObsSession | None:
    """The current session, or ``None`` when observability is off."""
    return _active


__all__ = ["ObsSession", "RunRecord", "active_session", "end_session", "start_session"]
