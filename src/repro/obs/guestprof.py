"""Guest-program profiling: where do *guest* retirements and cycles go?

The metrics layer answers "how fast was the run"; this module answers
"which guest code was hot".  A :class:`GuestProfileCollector` holds
per-benchmark PC histograms filled in by two producers:

* the **emulator tiers** record retired-instruction counts.  The
  reference and fast tiers count per instruction; the blocks tier
  counts one ``(leader, retired)`` pair per compiled-block execution
  and folds the pairs into per-PC counts at loop exit — the block
  items are static, so an execution that retires ``k`` instructions
  retired exactly the first ``k`` items of the block (side exits
  commit a prefix), and the hot path pays one dict update per *block*
  rather than per instruction;
* the **timing simulator** attributes each commit-to-commit cycle
  delta to the committing PC, split across the CPI components with the
  same clamped waterfall the ``SimStats`` stack uses
  (:func:`repro.obs.attribution.split_claims`), so per-line cycle
  stacks sum exactly to the run's total cycles.

Two modes: ``exact`` (every retirement counted) and ``sample`` (every
*period*-th retirement; on the blocks tier samples land on block
leaders, a documented approximation).  Profiles merge commutatively —
per-PC sums of non-negative counts — so ``--jobs`` sweep workers drain
their collector into the reply payload and the orchestrator ingests
them in any order, exactly like ``SimStats.merge``.

Like the observability session, the collector is process-global and
**off by default**: every producer hook is one
:func:`active_collector` ``None`` check, so disabled runs execute the
byte-identical pre-existing loops.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

from repro.obs.attribution import COMPONENT_KEYS, split_claims

#: Schema version of the serialized profile payload.
PROFILE_FORMAT = 1

#: Synthetic "PC" charged with end-of-run cycles no instruction could
#: be blamed for (the ``max(1, ...)`` floor on degenerate windows) —
#: keeps the per-PC stacks summing exactly to the reported cycles.
SHORTFALL_PC = -1

#: Default sampling period (retirements per sample) for ``sample`` mode.
DEFAULT_PERIOD = 1024


def _canon_mode(mode) -> str:
    return "sample" if str(mode).strip().lower() in ("sample", "sampling") else "exact"


class BenchProfile:
    """One benchmark's PC histograms (mutable accumulation buckets)."""

    __slots__ = ("counts", "cycles", "retired", "sampled", "cycles_total")

    def __init__(self) -> None:
        #: pc → retired instructions (exact mode) or samples (sample mode).
        self.counts: dict[int, int] = {}
        #: pc → per-component attributed cycles, ``COMPONENT_KEYS`` order.
        self.cycles: dict[int, list[int]] = {}
        #: total retired instructions observed (exact == sum of counts).
        self.retired = 0
        #: samples taken (sample mode; 0 in exact mode).
        self.sampled = 0
        #: total timing cycles attributed into :attr:`cycles`.
        self.cycles_total = 0


class GuestProfileCollector:
    """Process-global guest profiler; activate via :func:`start_guest_profile`."""

    def __init__(self, mode: str = "exact", period: int | None = None) -> None:
        self.mode = _canon_mode(mode)
        if self.mode == "sample":
            self.period = max(1, int(period if period is not None else DEFAULT_PERIOD))
        else:
            self.period = 1
        self.benchmarks: dict[str, BenchProfile] = {}
        self._current: BenchProfile | None = None
        #: Sampling countdown, carried across emulator loop invocations
        #: so the every-N cadence survives block boundaries and restarts.
        self.countdown = self.period

    # ------------------------------------------------------------ buckets

    def begin_benchmark(self, name: str) -> BenchProfile:
        """Direct subsequent counts/cycles at *name*'s bucket."""
        prof = self.benchmarks.get(name)
        if prof is None:
            prof = self.benchmarks[name] = BenchProfile()
        self._current = prof
        return prof

    def current(self) -> BenchProfile:
        """The active bucket (an anonymous ``?`` bucket if none began)."""
        if self._current is None:
            return self.begin_benchmark("?")
        return self._current

    # ---------------------------------------------------------- producers

    def add_counts(self, counts: dict[int, int], retired: int, sampled: int = 0) -> None:
        """Fold one emulator loop's PC histogram into the active bucket."""
        prof = self.current()
        dst = prof.counts
        for pc, c in counts.items():
            dst[pc] = dst.get(pc, 0) + c
        prof.retired += retired
        prof.sampled += sampled

    def add_cycles(self, percpc: dict[int, list[int]], total_cycles: int) -> None:
        """Fold one timing run's per-PC cycle stacks into the active bucket."""
        prof = self.current()
        dst = prof.cycles
        for pc, parts in percpc.items():
            slot = dst.get(pc)
            if slot is None:
                dst[pc] = list(parts)
            else:
                for i, v in enumerate(parts):
                    slot[i] += v
        prof.cycles_total += total_cycles

    # ------------------------------------------------------ serialization

    def to_dict(self) -> dict:
        """Schema-stable payload (all PC keys as strings, sorted)."""
        benches = {}
        for name in sorted(self.benchmarks):
            p = self.benchmarks[name]
            benches[name] = {
                "retired": p.retired,
                "sampled": p.sampled,
                "cycles_total": p.cycles_total,
                "counts": {str(pc): c for pc, c in sorted(p.counts.items())},
                "cycles": {str(pc): list(v) for pc, v in sorted(p.cycles.items())},
            }
        return {
            "format": PROFILE_FORMAT,
            "mode": self.mode,
            "period": self.period,
            "components": list(COMPONENT_KEYS),
            "benchmarks": benches,
        }

    def drain(self) -> dict:
        """Serialize accumulated buckets and reset them (keeps the
        sampling countdown).  Mirrors ``Tracer.drain``: a sweep worker
        ships the payload back with each reply and the orchestrator
        ingests it, so nothing is double-counted across replies."""
        payload = self.to_dict()
        self.benchmarks = {}
        self._current = None
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "GuestProfileCollector":
        problems = validate_profile(payload)
        if problems:
            raise ValueError(f"invalid guest profile: {problems[0]}")
        coll = cls(mode=payload["mode"], period=payload.get("period"))
        coll.ingest(payload)
        return coll

    def ingest(self, payload) -> None:
        """Merge a drained payload (commutative; tolerant of ``None``)."""
        if not isinstance(payload, dict):
            return
        benches = payload.get("benchmarks")
        if not isinstance(benches, dict):
            return
        width = len(COMPONENT_KEYS)
        for name, bench in benches.items():
            if not isinstance(bench, dict):
                continue
            prof = self.benchmarks.get(name)
            if prof is None:
                prof = self.benchmarks[name] = BenchProfile()
            prof.retired += int(bench.get("retired", 0))
            prof.sampled += int(bench.get("sampled", 0))
            prof.cycles_total += int(bench.get("cycles_total", 0))
            for key, c in (bench.get("counts") or {}).items():
                pc = int(key)
                prof.counts[pc] = prof.counts.get(pc, 0) + int(c)
            for key, parts in (bench.get("cycles") or {}).items():
                pc = int(key)
                slot = prof.cycles.get(pc)
                if slot is None:
                    slot = prof.cycles[pc] = [0] * width
                for i, v in enumerate(parts[:width]):
                    slot[i] += int(v)

    def merge(self, other: "GuestProfileCollector") -> "GuestProfileCollector":
        """Merge *other* into self (commutative per-PC sums); returns self."""
        self.ingest(other.to_dict())
        return self


def validate_profile(payload) -> list[str]:
    """Schema problems with a serialized profile (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("format") != PROFILE_FORMAT:
        problems.append(f"format is {payload.get('format')!r}, expected {PROFILE_FORMAT}")
    if payload.get("mode") not in ("exact", "sample"):
        problems.append(f"mode is {payload.get('mode')!r}")
    if not isinstance(payload.get("period"), int) or payload.get("period", 0) < 1:
        problems.append("period is not a positive integer")
    if list(payload.get("components", [])) != list(COMPONENT_KEYS):
        problems.append("components do not match COMPONENT_KEYS")
    benches = payload.get("benchmarks")
    if not isinstance(benches, dict):
        return problems + ["benchmarks is not an object"]
    for name, bench in benches.items():
        where = f"benchmarks[{name!r}]"
        if not isinstance(bench, dict):
            problems.append(f"{where} is not an object")
            continue
        for field in ("retired", "sampled", "cycles_total"):
            v = bench.get(field)
            if not isinstance(v, int) or v < 0:
                problems.append(f"{where}.{field} is not a non-negative integer")
        counts = bench.get("counts")
        if not isinstance(counts, dict):
            problems.append(f"{where}.counts is not an object")
        else:
            for key, c in counts.items():
                if not _is_pc_key(key) or not isinstance(c, int) or c < 0:
                    problems.append(f"{where}.counts[{key!r}] malformed")
                    break
            if payload.get("mode") == "exact" and isinstance(bench.get("retired"), int):
                total = sum(c for c in counts.values() if isinstance(c, int))
                if total != bench["retired"]:
                    problems.append(
                        f"{where}: exact counts sum to {total}, retired={bench['retired']}"
                    )
        cycles = bench.get("cycles")
        if not isinstance(cycles, dict):
            problems.append(f"{where}.cycles is not an object")
        else:
            for key, parts in cycles.items():
                if (
                    not _is_pc_key(key)
                    or not isinstance(parts, list)
                    or len(parts) != len(COMPONENT_KEYS)
                    or any(not isinstance(v, int) or v < 0 for v in parts)
                ):
                    problems.append(f"{where}.cycles[{key!r}] malformed")
                    break
            if isinstance(bench.get("cycles_total"), int):
                total = sum(
                    sum(parts)
                    for parts in cycles.values()
                    if isinstance(parts, list)
                )
                if total != bench["cycles_total"]:
                    problems.append(
                        f"{where}: cycle stacks sum to {total}, "
                        f"cycles_total={bench['cycles_total']}"
                    )
    return problems


def _is_pc_key(key) -> bool:
    try:
        int(key)
    except (TypeError, ValueError):
        return False
    return True


def write_profile(path, collector: GuestProfileCollector) -> None:
    """Serialize *collector* to *path* as deterministic JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(collector.to_dict(), fh, sort_keys=True, indent=1)
        fh.write("\n")


def load_profile(path) -> GuestProfileCollector:
    """Load and validate a profile written by :func:`write_profile`."""
    with open(path, encoding="utf-8") as fh:
        return GuestProfileCollector.from_dict(json.load(fh))


# -------------------------------------------------------- producer helpers

def profile_delta(prof: dict, pc: int, delta: int, claims: tuple) -> None:
    """Attribute one commit delta to *pc* in a run-local stack dict.

    Mirrors the exact clamped waterfall ``attribute_delta`` applies to
    ``SimStats`` (via :func:`repro.obs.attribution.split_claims`), so
    the per-PC stacks and the run stack decompose the same cycles.
    """
    parts = split_claims(delta, claims)
    slot = prof.get(pc)
    if slot is None:
        prof[pc] = parts
    else:
        for i, v in enumerate(parts):
            slot[i] += v


def profile_from_records(records, collector: GuestProfileCollector) -> None:
    """Count retirements from an already-collected trace.

    Cache hits skip the emulator entirely, so the machine-loop hooks
    never see the instructions; replaying the cached records through
    the collector keeps per-PC counts identical to a cold collection
    (including the sampling cadence, which consumes the shared
    countdown).
    """
    counts: dict[int, int] = {}
    retired = 0
    sampled = 0
    if collector.mode == "exact":
        for rec in records:
            pc = rec.pc
            counts[pc] = counts.get(pc, 0) + 1
            retired += 1
    else:
        period = collector.period
        left = collector.countdown
        for rec in records:
            retired += 1
            left -= 1
            if left <= 0:
                pc = rec.pc
                counts[pc] = counts.get(pc, 0) + 1
                sampled += 1
                left = period
        collector.countdown = left
    collector.add_counts(counts, retired, sampled)


# ------------------------------------------------------------ global state

_active: GuestProfileCollector | None = None


def start_guest_profile(
    mode: str = "exact", period: int | None = None
) -> GuestProfileCollector:
    """Activate a new global collector (replacing any existing one)."""
    global _active
    _active = GuestProfileCollector(mode=mode, period=period)
    return _active


def end_guest_profile() -> GuestProfileCollector | None:
    """Deactivate and return the current collector."""
    global _active
    collector, _active = _active, None
    return collector


def active_collector() -> GuestProfileCollector | None:
    """The current collector, or ``None`` when guest profiling is off."""
    return _active


@contextmanager
def suspended_guest_profile():
    """Temporarily deactivate the collector (no-op when already off).

    Used around execution that must stay out of the profile — the
    steady-state fast-forward before a traced window, so a cold
    collection counts exactly the instructions a cache hit replays
    through :func:`profile_from_records`.
    """
    global _active
    saved, _active = _active, None
    try:
        yield saved
    finally:
        _active = saved


__all__ = [
    "BenchProfile",
    "DEFAULT_PERIOD",
    "GuestProfileCollector",
    "PROFILE_FORMAT",
    "SHORTFALL_PC",
    "active_collector",
    "end_guest_profile",
    "load_profile",
    "profile_delta",
    "profile_from_records",
    "start_guest_profile",
    "suspended_guest_profile",
    "validate_profile",
    "write_profile",
]
