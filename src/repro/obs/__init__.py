"""Observability layer: metrics, cycle-event tracing, profiling, provenance.

The paper's claims are measurements; this package makes every run of
the reproduction produce structured, diffable, provenance-stamped
telemetry (see ``docs/observability.md``):

* :mod:`repro.obs.registry` — hierarchical metrics registry (counters,
  gauges, log2 histograms, timers) addressed by dotted name;
* :mod:`repro.obs.events` — bounded ring buffer of typed cycle events
  with JSONL and Chrome/Perfetto trace export;
* :mod:`repro.obs.profiler` — per-phase wall time and host-side
  instructions-per-second throughput;
* :mod:`repro.obs.manifest` — run manifests (config, seed, git SHA,
  package versions) and ``BENCH_<run>.json`` perf snapshots;
* :mod:`repro.obs.session` — the per-driver-run aggregate the CLI's
  ``--metrics-out`` / ``--trace-events`` / ``--profile`` flags activate;
* :mod:`repro.obs.tracing` — sweep-wide distributed spans (orchestrator,
  workers, cells) with cross-process context propagation, merged into a
  single Perfetto timeline plus a schema-validated JSONL span log
  (the CLI's ``--trace-spans`` / ``--live``).
"""

from repro.obs.events import (
    CycleEvent,
    EventTrace,
    merge_chrome_traces,
    validate_event,
    validate_jsonl_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    active_tracer,
    end_tracing,
    spans_to_chrome_trace,
    start_tracing,
    validate_span,
    validate_spans_file,
    write_span_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.manifest import (
    build_manifest,
    load_bench_snapshot,
    validate_bench_snapshot,
    validate_manifest,
    write_bench_snapshot,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    validate_metrics_dump,
)
from repro.obs.session import ObsSession, active_session, end_session, start_session
from repro.obs.guestprof import (
    GuestProfileCollector,
    active_collector,
    end_guest_profile,
    load_profile,
    start_guest_profile,
    suspended_guest_profile,
    validate_profile,
    write_profile,
)

__all__ = [
    "Counter",
    "CycleEvent",
    "EventTrace",
    "Gauge",
    "GuestProfileCollector",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "PhaseProfiler",
    "Span",
    "Timer",
    "Tracer",
    "active_collector",
    "active_session",
    "active_tracer",
    "build_manifest",
    "end_guest_profile",
    "end_session",
    "end_tracing",
    "load_bench_snapshot",
    "load_profile",
    "merge_chrome_traces",
    "spans_to_chrome_trace",
    "start_guest_profile",
    "start_session",
    "start_tracing",
    "suspended_guest_profile",
    "validate_bench_snapshot",
    "validate_event",
    "validate_jsonl_file",
    "validate_manifest",
    "validate_metrics_dump",
    "validate_profile",
    "validate_span",
    "validate_spans_file",
    "write_bench_snapshot",
    "write_chrome_trace",
    "write_profile",
    "write_jsonl",
    "write_span_chrome_trace",
    "write_spans_jsonl",
]
