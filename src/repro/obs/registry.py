"""Hierarchical metrics registry.

Components register metrics by dotted name (``sim.l1d.hits``,
``emulate.instructions``) into a :class:`MetricsRegistry`.  Four metric
kinds cover every counter the repo produces:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written value (also the lazy/callback form, so a
  live object can be observed with zero hot-loop overhead);
* :class:`Histogram` — fixed log2 buckets (bucket *k* holds values
  ``2**(k-1) < v <= 2**k``), the right shape for latencies and queue
  depths that span orders of magnitude;
* :class:`Timer` — accumulated wall seconds plus a call count.

The registry serializes to a flat, sorted, schema-validated dict (see
:data:`METRICS_DUMP_FORMAT` and :func:`validate_metrics_dump`) so dumps
from different runs diff cleanly line-by-line.  Registries and dumps
merge commutatively: counters/histograms/timers add, gauges last-write-
win — the aggregation rule each kind's semantics require.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Iterator

#: Format tag embedded in every metrics dump.
METRICS_DUMP_FORMAT = 1

#: Number of log2 buckets (covers values up to 2**62, plus overflow).
HISTOGRAM_BUCKETS = 64

_KINDS = ("counter", "gauge", "histogram", "timer")


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"kind": self.kind, "help": self.help, "value": self.value}

    def merge_from(self, payload: dict) -> None:
        self.value += payload["value"]


class Gauge:
    """Last-written value; optionally backed by a zero-cost callback."""

    __slots__ = ("name", "help", "_value", "_fn")
    kind = "gauge"

    def __init__(self, name: str, help: str = "", fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value
        self._fn = None

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def to_dict(self) -> dict:
        return {"kind": self.kind, "help": self.help, "value": self.value}

    def merge_from(self, payload: dict) -> None:
        self.set(payload["value"])  # last write wins


class Histogram:
    """Fixed log2-bucket histogram (bucket k: 2**(k-1) < v <= 2**k)."""

    __slots__ = ("name", "help", "buckets", "count", "total")
    kind = "histogram"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.buckets = [0] * HISTOGRAM_BUCKETS
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        iv = int(value)
        k = (iv - 1).bit_length() if iv > 0 else 0
        if k >= HISTOGRAM_BUCKETS:
            k = HISTOGRAM_BUCKETS - 1
        self.buckets[k] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def nonzero_buckets(self) -> dict[str, int]:
        """Sparse view: ``"<=2**k"`` → count, only occupied buckets."""
        return {f"le_2**{k}": c for k, c in enumerate(self.buckets) if c}

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "count": self.count,
            "total": self.total,
            "buckets": self.nonzero_buckets(),
        }

    def merge_from(self, payload: dict) -> None:
        self.count += payload["count"]
        self.total += payload["total"]
        for key, c in payload["buckets"].items():
            k = int(key.rsplit("**", 1)[1])
            self.buckets[min(k, HISTOGRAM_BUCKETS - 1)] += c


class Timer:
    """Accumulated wall-clock seconds with a call count.

    Usable as a context manager::

        with registry.timer("sim.run"):
            ...
    """

    __slots__ = ("name", "help", "seconds", "calls", "_t0")
    kind = "timer"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.seconds = 0.0
        self.calls = 0
        self._t0 = None

    def add(self, seconds: float, calls: int = 1) -> None:
        self.seconds += seconds
        self.calls += calls

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.add(time.perf_counter() - self._t0)
        self._t0 = None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "help": self.help, "seconds": self.seconds, "calls": self.calls}

    def merge_from(self, payload: dict) -> None:
        self.seconds += payload["seconds"]
        self.calls += payload["calls"]


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram, "timer": Timer}


def _check_name(name: str) -> None:
    if not name or any(not part for part in name.split(".")):
        raise ValueError(f"metric name must be non-empty dotted segments, got {name!r}")


class MetricsRegistry:
    """Get-or-create store of metrics addressed by dotted name."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram | Timer] = {}

    def _get_or_create(self, cls, name: str, help: str):
        _check_name(name)
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)

    def timer(self, name: str, help: str = "") -> Timer:
        return self._get_or_create(Timer, name, help)

    def callback_gauge(self, name: str, fn: Callable[[], float], help: str = "") -> Gauge:
        """A gauge whose value is read lazily from *fn* at export time —
        the zero-overhead way to expose a live object's state."""
        gauge = self.gauge(name, help)
        gauge._fn = fn
        return gauge

    # ------------------------------------------------------------- access

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def get(self, name: str):
        return self._metrics.get(name)

    def subtree(self, prefix: str) -> dict[str, object]:
        """All metrics under ``prefix.`` (or the exact name), by name."""
        dotted = prefix + "."
        return {
            name: m
            for name, m in sorted(self._metrics.items())
            if name == prefix or name.startswith(dotted)
        }

    # ------------------------------------------------------------- export

    def to_dict(self) -> dict:
        """Schema-stable dump: sorted names, per-kind payloads."""
        return {
            "format": METRICS_DUMP_FORMAT,
            "metrics": {name: m.to_dict() for name, m in sorted(self._metrics.items())},
        }

    def flat(self) -> dict[str, float]:
        """name → one representative scalar per metric (for quick diffs)."""
        out: dict[str, float] = {}
        for m in self:
            if isinstance(m, Timer):
                out[m.name] = m.seconds
            elif isinstance(m, Histogram):
                out[m.name] = m.count
            else:
                out[m.name] = m.value
        return out

    def to_json(self, manifest: dict | None = None) -> str:
        payload = self.to_dict()
        if manifest is not None:
            payload["manifest"] = manifest
        return json.dumps(payload, indent=2, sort_keys=True)

    def merge_dump(self, dump: dict) -> None:
        """Fold a :meth:`to_dict` payload into this registry."""
        validate_metrics_dump(dump)
        for name, payload in dump["metrics"].items():
            metric = self._get_or_create(_METRIC_TYPES[payload["kind"]], name, payload.get("help", ""))
            metric.merge_from(payload)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_dump(other.to_dict())


def validate_metrics_dump(payload: dict) -> None:
    """Validate a metrics dump against the expected schema.

    Raises:
        ValueError: wrong format tag, malformed names, unknown metric
            kinds, or missing per-kind fields.
    """
    if not isinstance(payload, dict):
        raise ValueError("metrics dump must be a dict")
    if payload.get("format") != METRICS_DUMP_FORMAT:
        raise ValueError(f"unsupported metrics dump format {payload.get('format')!r}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("metrics dump missing 'metrics' mapping")
    required = {
        "counter": ("value",),
        "gauge": ("value",),
        "histogram": ("count", "total", "buckets"),
        "timer": ("seconds", "calls"),
    }
    for name, entry in metrics.items():
        _check_name(name)
        kind = entry.get("kind")
        if kind not in _KINDS:
            raise ValueError(f"metric {name!r}: unknown kind {kind!r}")
        for field in required[kind]:
            if field not in entry:
                raise ValueError(f"metric {name!r}: {kind} entry missing {field!r}")


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_BUCKETS",
    "METRICS_DUMP_FORMAT",
    "MetricsRegistry",
    "Timer",
    "validate_metrics_dump",
]
