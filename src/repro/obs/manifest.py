"""Run manifests and perf snapshots.

Every observability artifact (metrics dump, event trace, results
archive) is only comparable across runs if we know *what* ran: this
module stamps runs with their provenance — config, seed, git SHA,
package versions, host — and writes the ``BENCH_<run>.json`` perf
snapshot (per-benchmark IPC, host-side simulation throughput, wall
time) that populates the repo's perf trajectory and makes regressions
diffable, in the spirit of uops.info's versioned artifact sets.

Nothing here hard-requires git or any package: provenance fields that
cannot be determined degrade to ``None`` rather than failing a run.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.harness.atomicio import atomic_write_json

#: Format tags embedded in the artifacts.
MANIFEST_FORMAT = 1
BENCH_SNAPSHOT_FORMAT = 1

#: Packages whose versions are provenance-relevant for a run.
_TRACKED_PACKAGES = ("numpy", "scipy", "pytest", "hypothesis", "pytest-benchmark")


def git_sha(cwd: str | Path | None = None) -> str | None:
    """The commit SHA of the checkout containing *cwd*.

    Defaults to the directory of this source file — the SHA of the code
    that ran, regardless of where the driver was invoked from — and
    degrades to ``None`` for non-git installs.
    """
    if cwd is None:
        cwd = Path(__file__).parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def package_versions(names: tuple[str, ...] = _TRACKED_PACKAGES) -> dict[str, str]:
    """Installed versions of provenance-relevant packages (absent → skipped)."""
    from importlib import metadata

    versions: dict[str, str] = {}
    for name in names:
        try:
            versions[name] = metadata.version(name)
        except metadata.PackageNotFoundError:
            continue
    return versions


def build_manifest(
    config: dict | None = None,
    seed: int | None = None,
    argv: list[str] | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble the provenance manifest for one run."""
    from repro import __version__

    manifest = {
        "format": MANIFEST_FORMAT,
        "created_unix": time.time(),
        "repro_version": __version__,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "git_sha": git_sha(),
        "packages": package_versions(),
        "config": config or {},
        "seed": seed,
        "argv": list(argv) if argv is not None else list(sys.argv),
    }
    if extra:
        manifest.update(extra)
    return manifest


def validate_manifest(manifest: dict) -> None:
    """Raise ``ValueError`` unless *manifest* has the required shape."""
    if not isinstance(manifest, dict):
        raise ValueError("manifest must be a dict")
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"unsupported manifest format {manifest.get('format')!r}")
    required = ("created_unix", "repro_version", "python", "platform", "packages", "config", "argv")
    for key in required:
        if key not in manifest:
            raise ValueError(f"manifest missing required key {key!r}")
    if "git_sha" not in manifest:
        raise ValueError("manifest missing 'git_sha' (use None when unknown)")
    if not isinstance(manifest["packages"], dict) or not isinstance(manifest["config"], dict):
        raise ValueError("manifest 'packages' and 'config' must be mappings")


# ------------------------------------------------------------ perf snapshot

def bench_snapshot(run: str, benchmarks: dict[str, dict], manifest: dict) -> dict:
    """Build a ``BENCH_<run>`` payload.

    *benchmarks* maps benchmark name → per-benchmark record; each record
    should carry ``ipc`` (per-config mapping or scalar),
    ``wall_seconds`` and ``instructions_per_second``.
    """
    total_wall = sum(float(b.get("wall_seconds", 0.0)) for b in benchmarks.values())
    return {
        "format": BENCH_SNAPSHOT_FORMAT,
        "kind": "bench-snapshot",
        "run": run,
        "manifest": manifest,
        "benchmarks": benchmarks,
        "totals": {"wall_seconds": total_wall, "benchmarks": len(benchmarks)},
    }


def validate_bench_snapshot(payload: dict) -> None:
    """Raise ``ValueError`` unless *payload* is a well-formed snapshot."""
    if not isinstance(payload, dict) or payload.get("kind") != "bench-snapshot":
        raise ValueError("not a bench-snapshot payload")
    if payload.get("format") != BENCH_SNAPSHOT_FORMAT:
        raise ValueError(f"unsupported bench-snapshot format {payload.get('format')!r}")
    validate_manifest(payload.get("manifest", {}))
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise ValueError("bench-snapshot missing 'benchmarks' mapping")
    for name, record in benchmarks.items():
        if not isinstance(record, dict):
            raise ValueError(f"benchmark {name!r}: record must be a mapping")
        for key in ("ipc", "wall_seconds", "instructions_per_second"):
            if key not in record:
                raise ValueError(f"benchmark {name!r}: record missing {key!r}")


def write_bench_snapshot(
    directory: str | Path,
    run: str,
    benchmarks: dict[str, dict],
    manifest: dict,
) -> Path:
    """Atomically write ``BENCH_<run>.json`` into *directory*."""
    payload = bench_snapshot(run, benchmarks, manifest)
    validate_bench_snapshot(payload)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{run}.json"
    atomic_write_json(path, payload)
    return path


def load_bench_snapshot(path: str | Path) -> dict:
    """Read and validate a snapshot file."""
    payload = json.loads(Path(path).read_text())
    validate_bench_snapshot(payload)
    return payload


__all__ = [
    "BENCH_SNAPSHOT_FORMAT",
    "MANIFEST_FORMAT",
    "bench_snapshot",
    "build_manifest",
    "git_sha",
    "load_bench_snapshot",
    "package_versions",
    "validate_bench_snapshot",
    "validate_manifest",
    "write_bench_snapshot",
]
