"""SMARTS-style statistical sampling over the blocks-tier emulator.

Full detailed simulation pays the per-instruction timing model (and
trace-record construction) for every retired instruction, which caps
feasible budgets at tens of thousands of instructions per cell.  This
module trades a small, quantified amount of accuracy for another order
of magnitude: it alternates

* **warming fast-forward spans** — warm-variant block-compiled
  execution (:meth:`~repro.emulator.machine.Machine.run_warm`): no
  ``TraceRecord`` objects, but every memory operand touches the cache
  hierarchy and every control transfer trains the branch predictor, so
  microarchitectural state stays *continuously* warm between windows.
  Cache content has far longer history than any affordable discrete
  warming span — a line loaded 100k instructions ago still turns a
  memory miss into an L2 hit — which is why SMARTS warms functionally
  throughout the fast-forward rather than in bursts before windows,
* **optional trace-mode warming spans** (``plan.warm``) — the discrete
  fallback used when the machine has no blocks engine, and
* **measurement windows** — short detailed-simulation slices run on a
  fresh :class:`~repro.timing.simulator.TimingSimulator` that *adopts*
  the warmed predictor/hierarchy
  (:meth:`~repro.timing.simulator.TimingSimulator.adopt_warm_state`)
  plus a detailed-warmup prefix that is simulated but not measured,

and reports the per-window IPC / CPI-stack population through a
ratio estimator with bootstrap confidence intervals.  With a CI target
set, the run auto-extends window by window until the relative CI
half-width reaches the target (or the guest halts / the window cap is
hit) — the SMARTS "online" sampling regime.

Everything is deterministic: the window schedule is a pure function of
the :class:`SamplingPlan` (the seed fixes the stratified window
placement and the bootstrap resamples), so sampled sweep cells replay
bit-identically under ``--resume`` and arbitrary ``--jobs N`` — the
same discipline ``chaos_sweep.py`` asserts for exact cells.  The plan's
:meth:`~SamplingPlan.canonical` string is threaded into the journal
cell key for exactly that reason.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field, replace

from repro.branch.predictor import FrontEndPredictor
from repro.core.config import MachineConfig
from repro.memsys.hierarchy import MemoryHierarchy
from repro.timing.stats import SimStats

#: CPI-stack component fields whose per-instruction rates get bootstrap
#: intervals alongside IPC (order matches the attribution waterfall).
CPI_COMPONENTS: tuple[str, ...] = (
    "cpi_base",
    "cpi_branch_recovery",
    "cpi_ruu_stall",
    "cpi_lsq_stall",
    "cpi_lsd_wait",
    "cpi_ptm_replay",
    "cpi_memory",
    "cpi_slice_wait",
)


@dataclass(frozen=True)
class SamplingPlan:
    """All knobs of one systematic-sampling run (pure value object).

    One *period* of ``interval`` instructions is laid out as::

        [ warming ff | trace warming | detailed warmup | window | warming ff ]

    so ``interval`` must cover ``warm + warmup + window``.  The
    fast-forward spans warm caches and predictors continuously at
    block-compiled speed; ``warm`` adds a discrete trace-mode warming
    span before each window and defaults to 0 (it only earns its cost
    on machines without a blocks engine).  The seed fixes the
    stratified window placement — each period's measured span lands at
    a seeded-uniform offset inside the period, breaking aliasing
    against guest loop periods — and the bootstrap resamples; two runs
    with equal plans and budgets produce bit-identical results.
    """

    window: int = 500          #: measured instructions per window
    warmup: int = 200          #: detailed-simulated but unmeasured prefix
    warm: int = 0              #: trace-mode warming instructions per period
    interval: int = 20_000     #: systematic-sampling period
    ci_target: float = 0.0     #: relative CI half-width target (0 = fixed budget)
    confidence: float = 0.95   #: bootstrap confidence level
    min_windows: int = 2       #: windows required before a CI check can stop the run
    max_windows: int = 512     #: auto-extension cap
    seed: int = 2003           #: window-placement + bootstrap RNG seed
    resamples: int = 200       #: bootstrap resample count

    def validate(self) -> "SamplingPlan":
        if self.window < 1:
            raise ValueError(f"sampling window must be >= 1, got {self.window}")
        if self.warmup < 0 or self.warm < 0:
            raise ValueError("sampling warmup/warm spans must be >= 0")
        if self.interval < self.warm + self.warmup + self.window:
            raise ValueError(
                f"sampling interval {self.interval} cannot fit "
                f"warm {self.warm} + warmup {self.warmup} + window {self.window}"
            )
        if not 0.0 <= self.ci_target < 1.0:
            raise ValueError(f"ci_target must be in [0, 1), got {self.ci_target}")
        if not 0.5 <= self.confidence < 1.0:
            raise ValueError(f"confidence must be in [0.5, 1), got {self.confidence}")
        if self.min_windows < 2:
            raise ValueError("min_windows must be >= 2 (a CI needs variance)")
        if self.max_windows < self.min_windows:
            raise ValueError("max_windows must be >= min_windows")
        if self.resamples < 2:
            raise ValueError("resamples must be >= 2")
        return self

    def canonical(self) -> str:
        """Deterministic identity string (journal cell-key component)."""
        return "|".join(
            (
                f"window={self.window}",
                f"warmup={self.warmup}",
                f"warm={self.warm}",
                f"interval={self.interval}",
                f"ci={self.ci_target!r}",
                f"conf={self.confidence!r}",
                f"min={self.min_windows}",
                f"max={self.max_windows}",
                f"seed={self.seed}",
                f"resamples={self.resamples}",
            )
        )

    def with_seed(self, seed: int) -> "SamplingPlan":
        return replace(self, seed=seed)


class WarmState:
    """Functionally-warmed microarchitectural state carried across windows.

    Holds the branch predictors and cache hierarchy that warming spans
    train and measurement windows adopt; because the same objects flow
    through every span *and* every window, state stays continuously
    warm across the whole sampled run, exactly as it would in one
    unbroken detailed simulation.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.predictor = FrontEndPredictor(
            config.gshare_entries, config.btb_entries, config.btb_assoc, config.ras_depth
        )
        self.hierarchy = MemoryHierarchy(
            l1_latency=config.l1_latency,
            l2_latency=config.l2_latency,
            memory_latency=config.memory_latency,
        )
        self._line_shift = self.hierarchy.l1i.config.offset_bits
        self._line = -1
        self.warmed = 0

    def observe(self, record) -> None:
        """Feed one architectural trace record through the warm structures.

        Mirrors what the timing model touches per instruction: one
        I-side access per fetch-line transition, one D-side access per
        load/store, and predictor training on every control transfer —
        without any of the timing bookkeeping.
        """
        pc = record.pc
        line = pc >> self._line_shift
        if line != self._line:
            self._line = line
            self.hierarchy.access_instruction(pc)
        if record.mem_addr >= 0:
            self.hierarchy.access_data(record.mem_addr)
        if record.inst.is_control:
            self.predictor.predict_and_train(record)
        self.warmed += 1

    def checkpoint(self) -> "WarmState":
        """Deep snapshot of the warmed state (window checkpoint/restore)."""
        return copy.deepcopy(self)


@dataclass
class MachineCheckpoint:
    """Architectural snapshot of a :class:`~repro.emulator.machine.Machine`.

    Captures only the mutable guest state (registers, PC, memory,
    retirement count, halt/exit status, syscall output) so a window —
    or an entire sampled region — can be re-executed from a known
    point without rebuilding the machine or its bound dispatch tables.
    """

    regs: list
    pc: int
    instret: int
    halted: bool
    exit_code: int
    output: bytearray
    memory: object

    @classmethod
    def capture(cls, machine) -> "MachineCheckpoint":
        return cls(
            regs=list(machine.regs),
            pc=machine.pc,
            instret=machine.instret,
            halted=machine.halted,
            exit_code=machine.exit_code,
            output=bytearray(machine.output),
            memory=copy.deepcopy(machine.memory),
        )

    def restore(self, machine) -> None:
        machine.regs[:] = self.regs
        machine.pc = self.pc
        machine.instret = self.instret
        machine.halted = self.halted
        machine.exit_code = self.exit_code
        machine.output[:] = self.output
        machine.memory = copy.deepcopy(self.memory)


@dataclass
class SamplingResult:
    """Outcome of one sampled run."""

    stats: SimStats                  #: merged window stats + ``sampling.*`` extra
    plan: SamplingPlan
    windows: list[SimStats] = field(default_factory=list)
    ipc_point: float = 0.0           #: ratio-estimator IPC over all windows
    ipc_lo: float = 0.0
    ipc_hi: float = 0.0
    rel_halfwidth: float = float("inf")
    skipped: int = 0                 #: warming-fast-forward instructions
    warmed: int = 0                  #: functional-warming instructions
    detail_warmup: int = 0           #: detailed-simulated but unmeasured
    measured: int = 0                #: instructions in measured windows
    halted: bool = False             #: guest halted before the schedule ended
    trajectory: list[tuple[int, float]] = field(default_factory=list)
    cpi_ci: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def executed(self) -> int:
        """Instructions retired inside the sampled region (all spans)."""
        return self.skipped + self.warmed + self.detail_warmup + self.measured


def _percentile_ci(values: list[float], confidence: float) -> tuple[float, float]:
    """Nearest-rank percentile interval over bootstrap statistics."""
    ordered = sorted(values)
    n = len(ordered)
    alpha = (1.0 - confidence) / 2.0
    lo_idx = min(n - 1, max(0, int(alpha * n)))
    hi_idx = min(n - 1, max(0, int((1.0 - alpha) * n)))
    return ordered[lo_idx], ordered[hi_idx]


def bootstrap_cis(windows: list[SimStats], plan: SamplingPlan) -> dict:
    """Bootstrap confidence intervals over per-window stats.

    Windows are resampled with replacement; each resample's IPC is the
    ratio estimator ``sum(instructions) / sum(cycles)`` (and each CPI
    component's rate ``sum(component) / sum(instructions)``), matching
    how :meth:`SimStats.merge_all` pools the real windows.  The RNG is
    seeded from ``(plan.seed, len(windows))`` so every CI evaluation —
    including the intermediate auto-extension checks — is a pure
    function of the plan and the windows it saw.
    """
    n = len(windows)
    insts = [w.instructions for w in windows]
    cycles = [w.cycles for w in windows]
    comps = {c: [getattr(w, c) for w in windows] for c in CPI_COMPONENTS}
    total_i = sum(insts)
    total_c = sum(cycles)
    point = total_i / total_c if total_c else 0.0
    out: dict = {
        "ipc_point": point,
        "cpi_point": {c: sum(v) / total_i if total_i else 0.0 for c, v in comps.items()},
    }
    if n < 2 or total_i == 0:
        out["ipc_ci"] = (point, point)
        out["cpi_ci"] = {c: (v, v) for c, v in out["cpi_point"].items()}
        out["rel_halfwidth"] = float("inf")
        return out
    rng = random.Random(f"sampling:{plan.seed}:{n}")
    randrange = rng.randrange
    ipc_samples: list[float] = []
    comp_samples: dict[str, list[float]] = {c: [] for c in CPI_COMPONENTS}
    for _ in range(plan.resamples):
        idxs = [randrange(n) for _ in range(n)]
        ti = sum(insts[i] for i in idxs)
        tc = sum(cycles[i] for i in idxs)
        ipc_samples.append(ti / tc if tc else 0.0)
        if ti:
            for c in CPI_COMPONENTS:
                vals = comps[c]
                comp_samples[c].append(sum(vals[i] for i in idxs) / ti)
    out["ipc_ci"] = _percentile_ci(ipc_samples, plan.confidence)
    out["cpi_ci"] = {
        c: _percentile_ci(s, plan.confidence) if s else (0.0, 0.0)
        for c, s in comp_samples.items()
    }
    lo, hi = out["ipc_ci"]
    out["rel_halfwidth"] = (hi - lo) / (2.0 * point) if point else float("inf")
    return out


def _attach_extra(result: SamplingResult) -> None:
    """Record the sampling summary in ``stats.extra`` (all floats).

    ``extra`` rides bit-identically through the journal result store
    (:func:`repro.experiments.journal.stats_to_payload`), the
    supervised pool and the obs registry, so sampled cells need no new
    serialization format anywhere downstream.
    """
    plan = result.plan
    extra = result.stats.extra
    extra["sampling.windows"] = float(len(result.windows))
    extra["sampling.window"] = float(plan.window)
    extra["sampling.warmup"] = float(plan.warmup)
    extra["sampling.warm"] = float(plan.warm)
    extra["sampling.interval"] = float(plan.interval)
    extra["sampling.seed"] = float(plan.seed)
    extra["sampling.ci_target"] = float(plan.ci_target)
    extra["sampling.confidence"] = float(plan.confidence)
    extra["sampling.instructions_skipped"] = float(result.skipped)
    extra["sampling.instructions_warmed"] = float(result.warmed)
    extra["sampling.instructions_detail_warmup"] = float(result.detail_warmup)
    extra["sampling.instructions_measured"] = float(result.measured)
    extra["sampling.ipc_point"] = result.ipc_point
    extra["sampling.ipc_ci_lo"] = result.ipc_lo
    extra["sampling.ipc_ci_hi"] = result.ipc_hi
    extra["sampling.ci_rel_halfwidth"] = (
        result.rel_halfwidth if result.rel_halfwidth != float("inf") else -1.0
    )
    extra["sampling.ci_checks"] = float(len(result.trajectory))
    for comp, (lo, hi) in result.cpi_ci.items():
        extra[f"sampling.{comp}_ci_lo"] = lo
        extra[f"sampling.{comp}_ci_hi"] = hi


def stats_error_bars(stats: SimStats) -> tuple[float, float] | None:
    """The IPC 95% CI carried by *stats*, or ``None`` for exact runs.

    The uniform probe every downstream renderer (sweep tables, Table 1,
    ``repro-report`` claim scoring) uses to decide between point and
    interval treatment of a result.
    """
    lo = stats.extra.get("sampling.ipc_ci_lo")
    hi = stats.extra.get("sampling.ipc_ci_hi")
    if lo is None or hi is None:
        return None
    return float(lo), float(hi)


def _publish_session(result: SamplingResult) -> None:
    """Accumulate ``sampling.*`` metrics into the active obs session."""
    from repro.obs.session import active_session

    session = active_session()
    if session is None:
        return
    reg = session.registry
    reg.counter("sampling.windows", help="detailed measurement windows run").inc(
        len(result.windows)
    )
    reg.counter(
        "sampling.instructions_skipped", help="instructions fast-forwarded in run mode"
    ).inc(result.skipped)
    reg.counter(
        "sampling.instructions_warmed", help="functional-warming instructions"
    ).inc(result.warmed)
    reg.counter(
        "sampling.instructions_measured", help="instructions inside measured windows"
    ).inc(result.measured)
    reg.gauge(
        "sampling.ci_rel_halfwidth", help="relative IPC CI half-width at run end"
    ).set(result.rel_halfwidth if result.rel_halfwidth != float("inf") else -1.0)
    hist = reg.histogram(
        "sampling.ci_checks_windows", help="windows accumulated at each CI evaluation"
    )
    for n_windows, _half in result.trajectory:
        hist.observe(n_windows)


def sample_benchmark(
    name: str,
    config: MachineConfig,
    plan: SamplingPlan,
    budget: int,
    iters: int | None = None,
    skip: int | None = None,
    profile: str = "ref",
    dispatch: str = "blocks",
    watchdog=None,
) -> SamplingResult:
    """Sampled detailed simulation of one benchmark under one config.

    *budget* is the instruction horizon the systematic schedule covers
    (``budget // interval`` periods, at least one); with a CI target
    the run then auto-extends period by period until the relative CI
    half-width meets it.  Initialization is skipped exactly as
    :meth:`repro.workloads.suite.Workload.trace` does (same skip-hint,
    same guest-profile suspension), so a sampled cell measures the same
    steady-state region an exact cell does.
    """
    from repro.emulator.machine import Machine
    from repro.obs.guestprof import suspended_guest_profile
    from repro.timing.simulator import TimingSimulator
    from repro.workloads.suite import get_workload, skip_hint

    plan.validate()
    workload = get_workload(name)
    machine = Machine(workload.build(iters, profile), dispatch=dispatch)
    if skip is None:
        skip = skip_hint(name, profile)
    warm = WarmState(config)
    result = SamplingResult(stats=SimStats(config_name=config.name), plan=plan)
    blocks_warm = machine._engine is not None
    if blocks_warm:
        machine.attach_warm_sink(warm.hierarchy, warm.predictor)

    n_periods = min(max(1, budget // plan.interval), plan.max_windows)
    if plan.ci_target > 0.0:
        n_periods = max(n_periods, plan.min_windows)
    slack = plan.interval - plan.warm - plan.warmup - plan.window
    # Stratified placement: each period's warm+window span lands at a
    # seeded-uniform offset within the period instead of a fixed phase.
    # The guests are short periodic kernels, so strict systematic
    # sampling aliases badly against loop periods (a fixed phase can be
    # >10% biased on regular kernels); uniform-within-stratum placement
    # makes the estimator unbiased regardless of periodicity while
    # keeping the whole schedule a pure function of the seed.
    place = random.Random(f"sampling-phase:{plan.seed}").randrange

    def fast_forward(span: int) -> int:
        # Warming fast-forward: block-compiled execution whose warm
        # hooks train the same predictor/hierarchy objects the windows
        # adopt.  Outside any guest profile (like the init skip in
        # Workload.trace) so profiles cover exactly the measured
        # windows.  Without a blocks engine, trace-mode observation is
        # the slow-but-faithful equivalent.
        with suspended_guest_profile():
            if blocks_warm:
                return machine.run_warm(span, watchdog=watchdog)
            ran = 0
            for record in machine.trace(span, watchdog=watchdog):
                warm.observe(record)
                ran += 1
            return ran

    with suspended_guest_profile():
        machine.run(skip, watchdog=watchdog)

    window_budget = plan.warmup + plan.window
    cis: dict = {}
    while not machine.halted and len(result.windows) < plan.max_windows:
        pre = place(slack + 1)
        post = slack - pre
        if pre:
            result.skipped += fast_forward(pre)
        if machine.halted:
            break
        if plan.warm:
            with suspended_guest_profile():
                for record in machine.trace(plan.warm, watchdog=watchdog):
                    warm.observe(record)
                    result.warmed += 1
            if machine.halted:
                break
        sim = TimingSimulator(config)
        sim.adopt_warm_state(warm.predictor, warm.hierarchy)
        before = machine.instret
        stats = sim.run(machine.trace(window_budget, watchdog=watchdog), warmup=plan.warmup)
        consumed = machine.instret - before
        result.detail_warmup += min(consumed, plan.warmup)
        if not stats.instructions:
            break  # the guest halted inside the detailed warmup: nothing measured
        result.measured += stats.instructions
        result.windows.append(stats)
        if post and not machine.halted:
            result.skipped += fast_forward(post)
        if plan.ci_target > 0.0:
            # Auto-extension: keep adding windows (past the scheduled
            # budget if needed) until the CI target is met.
            if len(result.windows) >= plan.min_windows:
                cis = bootstrap_cis(result.windows, plan)
                result.trajectory.append((len(result.windows), cis["rel_halfwidth"]))
                if cis["rel_halfwidth"] <= plan.ci_target:
                    break
        elif len(result.windows) >= n_periods:
            break

    if not result.windows:
        raise ValueError(
            f"sampling produced no measurement windows for {name!r}: "
            f"budget {budget} / guest length too small for interval {plan.interval}"
        )
    result.stats = SimStats.merge_all(result.windows)
    cis = bootstrap_cis(result.windows, plan)
    result.ipc_point = cis["ipc_point"]
    result.ipc_lo, result.ipc_hi = cis["ipc_ci"]
    result.rel_halfwidth = cis["rel_halfwidth"]
    result.cpi_ci = dict(cis["cpi_ci"])
    result.halted = machine.halted
    _attach_extra(result)
    _publish_session(result)
    return result


__all__ = [
    "CPI_COMPONENTS",
    "MachineCheckpoint",
    "SamplingPlan",
    "SamplingResult",
    "WarmState",
    "bootstrap_cis",
    "sample_benchmark",
    "stats_error_bars",
]
