"""Pipeline timeline capture and ASCII rendering.

Reproduces the paper's Figure 1 visually: for a window of instructions,
show when each was fetched, dispatched, when each of its result slices
completed, and when it committed — making the overlap (or serialization)
of dependent instructions visible across machine configurations.

The renderer is a view over the observability layer's cycle-event
stream (:mod:`repro.obs.events`): the simulator emits typed events, and
:func:`events_to_timeline` folds them back into per-instruction
:class:`TimelineEvent` rows that :func:`render_timeline` draws.  The
same stream exports to JSONL and Perfetto, so the ASCII view, the
machine-readable trace and the flame view can never disagree.

Usage::

    sim = TimingSimulator(bitslice_config(2), record_timeline=True)
    sim.run(trace, max_instructions=40)
    print(render_timeline(sim.timeline, limit=20))
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.obs.events import COMMIT, DISPATCH, FETCH, SLICE_COMPLETE, CycleEvent


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """Per-instruction pipeline timestamps."""

    seq: int
    pc: int
    mnemonic: str
    text: str
    fetch: int
    dispatch: int
    slice_completions: tuple[int, ...]
    complete: int
    commit: int
    mispredicted: bool = False

    @property
    def latency(self) -> int:
        """Fetch-to-commit latency in cycles."""
        return self.commit - self.fetch


def events_to_timeline(events: Iterable[CycleEvent]) -> list[TimelineEvent]:
    """Fold a cycle-event stream into per-instruction timeline rows.

    Instructions whose lifecycle is only partially present (the ring
    buffer evicted their fetch or their commit has not been emitted)
    are dropped — a bounded trace yields the most recent complete
    window, in sequence order.
    """
    fetch: dict[int, CycleEvent] = {}
    dispatch: dict[int, int] = {}
    slices: dict[int, dict[int, int]] = {}
    commit: dict[int, CycleEvent] = {}
    for e in events:
        if e.kind == FETCH:
            fetch[e.seq] = e
        elif e.kind == DISPATCH:
            dispatch[e.seq] = e.cycle
        elif e.kind == SLICE_COMPLETE:
            slices.setdefault(e.seq, {})[e.args.get("slice", 0)] = e.cycle
        elif e.kind == COMMIT:
            commit[e.seq] = e

    out: list[TimelineEvent] = []
    for seq in sorted(fetch.keys() & commit.keys()):
        f, c = fetch[seq], commit[seq]
        per_slice = slices.get(seq, {})
        completions = tuple(per_slice[k] for k in sorted(per_slice))
        complete = c.args.get("complete", max(completions, default=c.cycle))
        mnemonic = f.args.get("mnemonic", "inst")
        out.append(
            TimelineEvent(
                seq=seq,
                pc=f.pc,
                mnemonic=mnemonic,
                text=f.args.get("text", mnemonic),
                fetch=f.cycle,
                dispatch=dispatch.get(seq, f.cycle),
                slice_completions=completions or (complete,),
                complete=complete,
                commit=c.cycle,
                mispredicted=bool(c.args.get("mispredicted", False)),
            )
        )
    return out


def render_timeline(
    events: list[TimelineEvent],
    limit: int = 24,
    offset: int = 0,
    max_width: int = 100,
) -> str:
    """Render events as one ASCII row per instruction.

    Legend: ``F`` fetch, ``d`` dispatch, digits = completion of that
    result slice, ``*`` full completion, ``C`` commit, ``!`` appended
    to mispredicted control instructions.
    """
    window = events[offset : offset + limit]
    if not window:
        return "(no timeline events)"
    t0 = min(e.fetch for e in window)
    t1 = max(e.commit for e in window)
    span = t1 - t0 + 1
    scale = 1
    if span > max_width:
        scale = (span + max_width - 1) // max_width
        span = (span + scale - 1) // scale

    def col(cycle: int) -> int:
        # Clamp into the row: rounding at the final scaled column (or a
        # caller-constructed event outside [t0, t1]) must never index
        # past span or wrap to a negative index.
        return min(max((cycle - t0) // scale, 0), span - 1)

    # The label gutter is derived once and shared with the header, so
    # the cycle ruler stays aligned for any window — including offsets
    # whose rows have no mispredict flags or >6-digit sequence numbers.
    seq_width = max(6, *(len(str(e.seq)) for e in window))
    label_width = max(len(e.text) for e in window) + 2
    gutter = seq_width + 2 + label_width
    header = " " * gutter + f"cycles {t0}..{t1}" + (f" (1 char = {scale} cycles)" if scale > 1 else "")
    lines = [header]
    for e in window:
        row = ["."] * span
        row[col(e.fetch)] = "F"
        row[col(e.dispatch)] = "d"
        for k, t in enumerate(e.slice_completions):
            row[col(t)] = str(k) if len(e.slice_completions) > 1 else "*"
        if len(e.slice_completions) <= 1:
            row[col(e.complete)] = "*"
        row[col(e.commit)] = "C"
        flag = "!" if e.mispredicted else " "
        lines.append(f"{e.seq:>{seq_width}}{flag} {e.text:<{label_width}}" + "".join(row))
    return "\n".join(lines)


def render_events(
    events: Iterable[CycleEvent],
    limit: int = 24,
    offset: int = 0,
    max_width: int = 100,
) -> str:
    """Render a raw cycle-event stream (ring buffer) directly."""
    return render_timeline(events_to_timeline(events), limit=limit, offset=offset, max_width=max_width)


def summarize_timeline(events: list[TimelineEvent]) -> str:
    """Aggregate latency statistics over a timeline."""
    if not events:
        return "(no timeline events)"
    latencies = sorted(e.latency for e in events)
    n = len(latencies)
    mean = sum(latencies) / n
    return (
        f"{n} instructions; fetch-to-commit latency "
        f"min {latencies[0]}, median {latencies[n // 2]}, "
        f"mean {mean:.1f}, max {latencies[-1]} cycles"
    )


__all__ = [
    "TimelineEvent",
    "events_to_timeline",
    "render_events",
    "render_timeline",
    "summarize_timeline",
]
