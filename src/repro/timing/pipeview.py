"""Pipeline timeline capture and ASCII rendering.

Reproduces the paper's Figure 1 visually: for a window of instructions,
show when each was fetched, dispatched, when each of its result slices
completed, and when it committed — making the overlap (or serialization)
of dependent instructions visible across machine configurations.

Usage::

    sim = TimingSimulator(bitslice_config(2), record_timeline=True)
    sim.run(trace, max_instructions=40)
    print(render_timeline(sim.timeline, limit=20))
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """Per-instruction pipeline timestamps."""

    seq: int
    pc: int
    mnemonic: str
    text: str
    fetch: int
    dispatch: int
    slice_completions: tuple[int, ...]
    complete: int
    commit: int
    mispredicted: bool = False

    @property
    def latency(self) -> int:
        """Fetch-to-commit latency in cycles."""
        return self.commit - self.fetch


def render_timeline(
    events: list[TimelineEvent],
    limit: int = 24,
    offset: int = 0,
    max_width: int = 100,
) -> str:
    """Render events as one ASCII row per instruction.

    Legend: ``F`` fetch, ``d`` dispatch, digits = completion of that
    result slice, ``*`` full completion, ``C`` commit, ``!`` appended
    to mispredicted control instructions.
    """
    window = events[offset : offset + limit]
    if not window:
        return "(no timeline events)"
    t0 = min(e.fetch for e in window)
    t1 = max(e.commit for e in window)
    span = t1 - t0 + 1
    scale = 1
    if span > max_width:
        scale = (span + max_width - 1) // max_width
        span = (span + scale - 1) // scale

    def col(cycle: int) -> int:
        return (cycle - t0) // scale

    label_width = max(len(e.text) for e in window) + 2
    header = " " * (8 + label_width) + f"cycles {t0}..{t1}" + (f" (1 char = {scale} cycles)" if scale > 1 else "")
    lines = [header]
    for e in window:
        row = ["."] * span
        row[col(e.fetch)] = "F"
        if col(e.dispatch) < span:
            row[col(e.dispatch)] = "d"
        for k, t in enumerate(e.slice_completions):
            c = col(t)
            if c < span:
                row[c] = str(k) if len(e.slice_completions) > 1 else "*"
        if col(e.complete) < span and len(e.slice_completions) <= 1:
            row[col(e.complete)] = "*"
        row[col(e.commit)] = "C"
        flag = "!" if e.mispredicted else " "
        lines.append(f"{e.seq:>6}{flag} {e.text:<{label_width}}" + "".join(row))
    return "\n".join(lines)


def summarize_timeline(events: list[TimelineEvent]) -> str:
    """Aggregate latency statistics over a timeline."""
    if not events:
        return "(no timeline events)"
    latencies = sorted(e.latency for e in events)
    n = len(latencies)
    mean = sum(latencies) / n
    return (
        f"{n} instructions; fetch-to-commit latency "
        f"min {latencies[0]}, median {latencies[n // 2]}, "
        f"mean {mean:.1f}, max {latencies[-1]} cycles"
    )
