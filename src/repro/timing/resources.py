"""Bandwidth and structural-resource trackers for the timestamp model.

The simulator processes instructions in program order, so reservation
times are almost monotonic; the pool keeps a small dict of per-cycle
usage and prunes entries older than a horizon to bound memory.
"""

from __future__ import annotations


class BandwidthPool:
    """N slots per cycle (issue ports, commit ports, a slice pipe)."""

    __slots__ = ("width", "_used", "_floor")

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self._used: dict[int, int] = {}
        self._floor = 0  # cycles below this are assumed full (pruned)

    def reserve(self, cycle: int) -> int:
        """Reserve a slot at the first cycle >= *cycle*; returns it."""
        c = max(cycle, self._floor)
        used = self._used
        while used.get(c, 0) >= self.width:
            c += 1
        used[c] = used.get(c, 0) + 1
        if len(used) > 4096:
            self._prune(c - 512)
        return c

    def _prune(self, horizon: int) -> None:
        self._used = {c: n for c, n in self._used.items() if c >= horizon}
        self._floor = max(self._floor, horizon)


class ExclusiveUnit:
    """A single non-pipelined unit (the integer mult/div unit)."""

    __slots__ = ("_free_at",)

    def __init__(self) -> None:
        self._free_at = 0

    def reserve(self, cycle: int, duration: int) -> int:
        """Occupy the unit for *duration* cycles starting at the first
        free cycle >= *cycle*; returns the actual start."""
        start = max(cycle, self._free_at)
        self._free_at = start + duration
        return start
