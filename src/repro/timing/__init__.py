"""Execution-driven timing model.

A one-pass timestamp simulator of the paper's 15-stage out-of-order
core (Figure 10, Table 2), supporting atomic, simple-pipelined and
bit-sliced execution stages with the partial-operand techniques as
feature flags.  See DESIGN.md §5 for the modelling decisions and the
known deltas (wrong-path instructions are charged as redirect latency,
not simulated).
"""

from repro.timing.fastpath import (
    TimingDivergence,
    cross_check_detailed,
    cross_check_timing,
    default_timing_mode,
    set_timing_mode,
    timing_mode_override,
)
from repro.timing.pipeview import events_to_timeline, render_events, render_timeline
from repro.timing.simulator import TimingSimulator, simulate
from repro.timing.stats import METRIC_CATALOG, SimStats

__all__ = [
    "METRIC_CATALOG",
    "SimStats",
    "TimingDivergence",
    "TimingSimulator",
    "cross_check_detailed",
    "cross_check_timing",
    "default_timing_mode",
    "events_to_timeline",
    "render_events",
    "render_timeline",
    "set_timing_mode",
    "simulate",
    "timing_mode_override",
]
