"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimStats:
    """Counters produced by one timing-simulation run."""

    config_name: str = ""
    instructions: int = 0
    cycles: int = 0

    loads: int = 0
    stores: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    early_resolved_mispredicts: int = 0

    l1d_hits: int = 0
    l1d_misses: int = 0
    load_replays: int = 0            # load-hit speculation replays

    ptm_accesses: int = 0            # loads that used partial tag matching
    ptm_early_hits: int = 0          # correct speculative way selections
    ptm_early_misses: int = 0        # early non-speculative miss signals
    ptm_way_mispredicts: int = 0     # wrong way picked, replay needed

    lsd_searches: int = 0            # loads that searched older stores
    lsd_early_releases: int = 0      # loads released before all store addrs known
    store_forwards: int = 0

    ruu_stall_cycles: int = 0
    lsq_stall_cycles: int = 0

    extra: dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def load_fraction(self) -> float:
        return self.loads / self.instructions if self.instructions else 0.0

    @property
    def branch_accuracy(self) -> float:
        """Conditional-branch direction accuracy (Table 1's metric)."""
        if not self.branches:
            return 0.0
        return 1.0 - self.branch_mispredicts / self.branches

    @property
    def ptm_way_mispredict_rate(self) -> float:
        """Fraction of PTM accesses whose way prediction was wrong
        (the paper reports ~2% for slice-by-2, ~1% for slice-by-4)."""
        return self.ptm_way_mispredicts / self.ptm_accesses if self.ptm_accesses else 0.0

    def summary(self) -> str:
        """Multi-line human-readable dump."""
        lines = [
            f"config            : {self.config_name}",
            f"instructions      : {self.instructions}",
            f"cycles            : {self.cycles}",
            f"IPC               : {self.ipc:.3f}",
            f"loads / stores    : {self.loads} / {self.stores}",
            f"branch accuracy   : {self.branch_accuracy:.1%} ({self.branch_mispredicts} mispredicts)",
            f"early resolved    : {self.early_resolved_mispredicts}",
            f"L1D hit rate      : {self.l1d_hits / max(1, self.l1d_hits + self.l1d_misses):.1%}",
            f"load replays      : {self.load_replays}",
            f"PTM way mispredict: {self.ptm_way_mispredict_rate:.2%} of {self.ptm_accesses}",
            f"LSD early release : {self.lsd_early_releases} of {self.lsd_searches} searches",
            f"store forwards    : {self.store_forwards}",
        ]
        return "\n".join(lines)
