"""Simulation statistics.

:class:`SimStats` is the mutable per-run accumulator the hot simulation
loop increments through plain attributes (the cheapest thing Python
offers).  Its schema, however, is owned by :data:`METRIC_CATALOG` — the
single table mapping every counter field to its dotted metric name and
description — which backs the uniform observability surface:
:meth:`SimStats.to_dict` (flat export including the ``extra`` dict and
derived rates), :meth:`SimStats.merge` (cross-run/cross-benchmark
aggregation), and :meth:`SimStats.publish` (accumulation into a
:class:`repro.obs.registry.MetricsRegistry` under the ``sim.*``
namespace).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

#: field name → (dotted metric name, description).  The authoritative
#: metric catalog for the timing simulator; docs/observability.md
#: renders this table.
METRIC_CATALOG: dict[str, tuple[str, str]] = {
    "instructions": ("sim.instructions", "committed instructions in the measured window"),
    "cycles": ("sim.cycles", "cycles spanned by the measured window"),
    "loads": ("sim.mem.loads", "committed loads"),
    "stores": ("sim.mem.stores", "committed stores"),
    "branches": ("sim.branch.conditional", "committed conditional branches"),
    "branch_mispredicts": ("sim.branch.mispredicts", "direction mispredictions"),
    "early_resolved_mispredicts": (
        "sim.branch.early_resolved", "mispredicts resolved on a partial operand (§5.3)"),
    "l1d_hits": ("sim.l1d.hits", "L1D load hits"),
    "l1d_misses": ("sim.l1d.misses", "L1D load misses"),
    "load_replays": ("sim.mem.load_replays", "load-hit speculation replays"),
    "ptm_accesses": ("sim.ptm.accesses", "loads using partial tag matching (§5.2)"),
    "ptm_early_hits": ("sim.ptm.early_hits", "correct speculative way selections"),
    "ptm_early_misses": ("sim.ptm.early_misses", "early non-speculative miss signals"),
    "ptm_way_mispredicts": ("sim.ptm.way_mispredicts", "wrong way picked, replay needed"),
    "lsd_searches": ("sim.lsd.searches", "loads that searched older stores (§5.1)"),
    "lsd_early_releases": (
        "sim.lsd.early_releases", "loads released before all store addresses were known"),
    "store_forwards": ("sim.lsd.store_forwards", "loads forwarded from an older store"),
    "ruu_stall_cycles": ("sim.stall.ruu_cycles", "fetch cycles lost to RUU occupancy"),
    "lsq_stall_cycles": ("sim.stall.lsq_cycles", "fetch cycles lost to LSQ occupancy"),
    # CPI-stack attribution (repro.obs.attribution): every measured
    # cycle lands in exactly one of these, so they sum to `cycles`.
    "cpi_branch_recovery": (
        "sim.cpi.branch_recovery",
        "cycles attributed to mispredict recovery (net of §5.3 early resolution)"),
    "cpi_ruu_stall": ("sim.cpi.ruu_stall", "cycles attributed to RUU occupancy stalls"),
    "cpi_lsq_stall": ("sim.cpi.lsq_stall", "cycles attributed to LSQ occupancy stalls"),
    "cpi_lsd_wait": (
        "sim.cpi.lsd_wait", "cycles attributed to load-store disambiguation waits (§5.1)"),
    "cpi_ptm_replay": (
        "sim.cpi.ptm_replay", "cycles attributed to way-mispredict verify + replay (§5.2)"),
    "cpi_memory": ("sim.cpi.memory", "cycles attributed to cache/memory latency beyond L1"),
    "cpi_slice_wait": (
        "sim.cpi.slice_wait", "cycles attributed to inter-slice carry/shift chains"),
    "cpi_base": ("sim.cpi.base", "cycles attributed to base issue/bandwidth progress"),
}

#: derived-rate name → description (computed, never stored).
DERIVED_CATALOG: dict[str, str] = {
    "ipc": "committed instructions per cycle",
    "cpi": "cycles per committed instruction",
    "load_fraction": "loads / instructions",
    "branch_accuracy": "conditional-branch direction accuracy (Table 1)",
    "ptm_way_mispredict_rate": "fraction of PTM accesses with a wrong way prediction",
    "l1d_hit_rate": "L1D load hit rate",
}


@dataclass
class SimStats:
    """Counters produced by one timing-simulation run."""

    config_name: str = ""
    instructions: int = 0
    cycles: int = 0

    loads: int = 0
    stores: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    early_resolved_mispredicts: int = 0

    l1d_hits: int = 0
    l1d_misses: int = 0
    load_replays: int = 0            # load-hit speculation replays

    ptm_accesses: int = 0            # loads that used partial tag matching
    ptm_early_hits: int = 0          # correct speculative way selections
    ptm_early_misses: int = 0        # early non-speculative miss signals
    ptm_way_mispredicts: int = 0     # wrong way picked, replay needed

    lsd_searches: int = 0            # loads that searched older stores
    lsd_early_releases: int = 0      # loads released before all store addrs known
    store_forwards: int = 0

    ruu_stall_cycles: int = 0
    lsq_stall_cycles: int = 0

    # CPI-stack attribution (see repro.obs.attribution): components of
    # `cycles`, maintained by the simulator's commit-time waterfall so
    # they always sum exactly to the measured cycle count.
    cpi_branch_recovery: int = 0
    cpi_ruu_stall: int = 0
    cpi_lsq_stall: int = 0
    cpi_lsd_wait: int = 0
    cpi_ptm_replay: int = 0
    cpi_memory: int = 0
    cpi_slice_wait: int = 0
    cpi_base: int = 0

    extra: dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction (the stack's total height)."""
        return self.cycles / self.instructions if self.instructions else 0.0

    def cpi_stack(self, benchmark: str = ""):
        """This run's cycle decomposition as a checked
        :class:`repro.obs.attribution.CPIStack`."""
        from repro.obs.attribution import CPIStack

        return CPIStack.from_stats(self, benchmark=benchmark).check()

    @property
    def load_fraction(self) -> float:
        return self.loads / self.instructions if self.instructions else 0.0

    @property
    def branch_accuracy(self) -> float:
        """Conditional-branch direction accuracy (Table 1's metric)."""
        if not self.branches:
            return 0.0
        return 1.0 - self.branch_mispredicts / self.branches

    @property
    def ptm_way_mispredict_rate(self) -> float:
        """Fraction of PTM accesses whose way prediction was wrong
        (the paper reports ~2% for slice-by-2, ~1% for slice-by-4)."""
        return self.ptm_way_mispredicts / self.ptm_accesses if self.ptm_accesses else 0.0

    @property
    def l1d_hit_rate(self) -> float:
        accesses = self.l1d_hits + self.l1d_misses
        return self.l1d_hits / accesses if accesses else 0.0

    # ------------------------------------------------------------- export

    def to_dict(self) -> dict:
        """Flat machine-readable form: counters, ``extra``, derived rates.

        The canonical export the aggregation/reporting layers consume
        instead of reaching into fields ad hoc.
        """
        out: dict = {"config_name": self.config_name}
        for name in METRIC_CATALOG:
            out[name] = getattr(self, name)
        out["extra"] = dict(self.extra)
        out["derived"] = {name: getattr(self, name) for name in DERIVED_CATALOG}
        return out

    def merge(self, other: "SimStats") -> "SimStats":
        """Sum of two runs' counters (``extra`` merged key-wise).

        Derived rates recompute from the merged counters, which makes
        this the instruction-weighted aggregate — the right way to pool
        windows of the same configuration across benchmarks or shards.
        """
        merged = SimStats(
            config_name=self.config_name
            if self.config_name == other.config_name
            else f"{self.config_name}+{other.config_name}",
        )
        for name in METRIC_CATALOG:
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.extra = dict(self.extra)
        for key, value in other.extra.items():
            merged.extra[key] = merged.extra.get(key, 0) + value
        return merged

    @classmethod
    def merge_all(cls, runs) -> "SimStats":
        """Fold an iterable of stats into one aggregate."""
        runs = list(runs)
        if not runs:
            raise ValueError("merge_all of empty sequence")
        total = runs[0]
        for stats in runs[1:]:
            total = total.merge(stats)
        return total

    def publish(self, registry, prefix: str = "") -> None:
        """Accumulate this run's counters into a metrics registry.

        Dotted names come from :data:`METRIC_CATALOG` (``sim.*``),
        optionally under an extra *prefix*; ``extra`` entries land under
        ``sim.extra.*``.  Publishing several runs sums them.
        """
        dot = prefix + "." if prefix else ""
        for name, (metric, help) in METRIC_CATALOG.items():
            registry.counter(dot + metric, help=help).inc(getattr(self, name))
        for key, value in self.extra.items():
            registry.counter(f"{dot}sim.extra.{key}", help="feature-specific counter").inc(value)

    def summary(self) -> str:
        """Multi-line human-readable dump."""
        lines = [
            f"config            : {self.config_name}",
            f"instructions      : {self.instructions}",
            f"cycles            : {self.cycles}",
            f"IPC               : {self.ipc:.3f}",
            f"loads / stores    : {self.loads} / {self.stores}",
            f"branch accuracy   : {self.branch_accuracy:.1%} ({self.branch_mispredicts} mispredicts)",
            f"early resolved    : {self.early_resolved_mispredicts}",
            f"L1D hit rate      : {self.l1d_hits / max(1, self.l1d_hits + self.l1d_misses):.1%}",
            f"load replays      : {self.load_replays}",
            f"PTM way mispredict: {self.ptm_way_mispredict_rate:.2%} of {self.ptm_accesses}",
            f"LSD early release : {self.lsd_early_releases} of {self.lsd_searches} searches",
            f"store forwards    : {self.store_forwards}",
        ]
        if self.instructions and self.cycles:
            from repro.obs.attribution import STAT_FIELDS

            parts = [
                f"{key} {getattr(self, fld) / self.cycles:.1%}"
                for key, fld in STAT_FIELDS.items()
                if getattr(self, fld)
            ]
            if parts:
                lines.append(f"CPI stack         : {self.cpi:.3f} = " + ", ".join(parts))
        return "\n".join(lines)


def _catalog_is_complete() -> bool:
    """Every counter field is cataloged (checked by the test suite)."""
    counted = {f.name for f in fields(SimStats)} - {"config_name", "extra"}
    return counted == set(METRIC_CATALOG)


__all__ = ["DERIVED_CATALOG", "METRIC_CATALOG", "SimStats"]
