"""One-pass timestamp timing model of the paper's machine.

The simulator consumes the architectural (correct-path) dynamic
instruction stream and assigns every instruction its fetch, execute and
commit cycles under the configured pipeline:

* **Figure 10(a)** — atomic single-cycle EX (``baseline_config``);
* **Figure 10 simple pipelining** — EX pipelined into 2 or 4 stages,
  operands atomic: dependants observe the full EX latency;
* **Figure 10(b)/(c)** — bit-sliced EX: dependences resolve on slice
  boundaries per Figure 8, with the partial-operand techniques
  (bypassing, out-of-order slices, early branch resolution, early
  load–store disambiguation, partial tag matching) as feature flags.

Wrong-path instructions are not executed; a misprediction instead
blocks fetch until the branch resolves (redirect latency), which the
paper identifies as the first-order cost.  Front-end depth, RUU/LSQ
occupancy, fetch/issue/commit bandwidth, functional-unit structural
hazards, the Table 2 memory hierarchy and the gshare/BTB/RAS front end
are all modeled.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterable

from repro.branch.early import can_resolve_early
from repro.branch.predictor import FrontEndPredictor
from repro.core.config import MachineConfig
from repro.core.slicing import slices_containing_difference, split_value
from repro.emulator.trace import TraceRecord
from repro.isa.opclass import OpClass, op_class
from repro.isa.registers import HI, LO, NUM_EXT_REGS
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.partial_tag import partial_tag_lookup
from repro.obs.attribution import attribute_delta
from repro.obs.guestprof import SHORTFALL_PC, profile_delta
from repro.obs.guestprof import active_collector as _guest_collector
from repro.obs.events import (
    COMMIT,
    CPI_SAMPLE,
    DISPATCH,
    EARLY_RELEASE,
    FETCH,
    REPLAY,
    SLICE_COMPLETE,
    WAY_MISPREDICT,
    EventTrace,
)
from repro.timing.resources import BandwidthPool, ExclusiveUnit
from repro.timing.stats import SimStats

_NEG_INF = -1

#: Commit-count stride between ``cpi_sample`` events (Perfetto counter
#: track granularity vs. event-stream volume).
CPI_SAMPLE_INTERVAL = 64


class _StoreEntry:
    """A store still potentially in the LSQ, as seen by younger loads."""

    __slots__ = ("seq", "addr", "agen_times", "data_ready", "commit", "dispatch")

    def __init__(self, seq: int, addr: int, agen_times: tuple[int, ...], data_ready: int, commit: int, dispatch: int):
        self.seq = seq
        self.addr = addr
        self.agen_times = agen_times
        self.data_ready = data_ready
        self.commit = commit
        self.dispatch = dispatch


class TimingSimulator:
    """Timestamp simulator for one :class:`MachineConfig`."""

    def __init__(
        self,
        config: MachineConfig,
        record_timeline: bool = False,
        events: EventTrace | None = None,
        mode: str | None = None,
    ) -> None:
        self.config = config
        self.stats = SimStats(config_name=config.name)
        #: Typed cycle-event stream (:mod:`repro.obs.events`).  The
        #: pipeline timeline, the JSONL export and the Perfetto trace
        #: are all views over this one stream.  *record_timeline*
        #: captures every instruction (unbounded, with disassembled
        #: labels); an explicit *events* ring buffer bounds memory for
        #: long sweeps.
        self._record_timeline = record_timeline
        if events is None and record_timeline:
            events = EventTrace(capacity=None)
        self.events = events
        #: Single cheap flag guarding every event-emission site in the
        #: hot loops: disabled observability costs one local branch.
        self._obs_enabled = events is not None
        self._emit_text = record_timeline
        self._timeline_cache: tuple[int, list] | None = None
        self.predictor = FrontEndPredictor(
            config.gshare_entries, config.btb_entries, config.btb_assoc, config.ras_depth
        )
        self.hierarchy = MemoryHierarchy(
            l1_latency=config.l1_latency,
            l2_latency=config.l2_latency,
            memory_latency=config.memory_latency,
        )
        S = config.num_slices
        self.num_slices = S
        self.slice_bits = 32 // S
        # Architectural register slice-ready times (GPRs + HI/LO +
        # FPRs + the FP condition flag).
        self.reg_ready: list[list[int]] = [[0] * S for _ in range(NUM_EXT_REGS)]
        # Issue/FU bandwidth: one pool per slice pipe (atomic: one pool).
        self.issue_pools = [BandwidthPool(config.issue_width) for _ in range(S)]
        self.commit_pool = BandwidthPool(config.commit_width)
        self.multdiv = ExclusiveUnit()
        self.fp_muldiv = ExclusiveUnit()  # Table 2: 1 FP mult/div/sqrt unit
        # Fetch state.
        self.fetch_cycle = 0
        self.fetched_this_cycle = 0
        self.redirect_at = 0
        self.current_fetch_line = -1
        self.line_ready_at = 0
        # In-order commit state and occupancy rings.
        self.last_commit = 0
        self.commit_ring: deque[int] = deque()       # RUU occupancy
        self.mem_commit_ring: deque[int] = deque()   # LSQ occupancy
        self.store_window: deque[_StoreEntry] = deque()
        self.seq = 0
        # Derived config flags, hoisted for the hot loop.
        f = config.features
        self.sliced = S > 1 and f.partial_operand_bypassing
        self.ooo_slices = self.sliced and f.out_of_order_slices
        self.early_branch = self.sliced and f.early_branch_resolution
        self.early_lsd = self.sliced and f.early_lsq_disambiguation
        self.ptm = self.sliced and f.partial_tag_matching
        self.narrow = self.sliced and f.narrow_width_relaxation
        self.spec_forward = self.sliced and f.speculative_forwarding
        # Sum-addressed indexing applies to any machine shape (§5.2
        # calls it orthogonal); it removes the adder from the cache
        # index path.
        self.sum_addressed = f.sum_addressed_cache
        self.line_shift = self.hierarchy.l1i.config.offset_bits
        # First agen slice index at which the L1D index is fully known.
        tag_shift = self.hierarchy.l1d.config.tag_shift
        self.index_ready_slice = (tag_shift + self.slice_bits - 1) // self.slice_bits - 1
        self.first_commit = None
        # CPI attribution: per-instruction stall claims, recorded while
        # the instruction schedules and settled against its
        # commit-to-commit delta by the waterfall (repro.obs.attribution).
        self._claim_branch = 0
        self._claim_ruu = 0
        self._claim_lsq = 0
        self._claim_lsd = 0
        self._claim_ptm = 0
        self._claim_mem = 0
        self._claim_slice = 0
        # Timing-mode dispatch (mirrors the emulator's REPRO_DISPATCH
        # pattern): "fast" replays pre-bound per-static-instruction
        # schedulers (repro.timing.fastpath), "reference" runs the
        # original loop below — the golden model the fast path is
        # lockstep-checked against.
        if mode is None:
            from repro.timing.fastpath import default_timing_mode

            mode = default_timing_mode()
        self.mode = (
            "reference" if str(mode).strip().lower() in ("reference", "ref", "slow") else "fast"
        )
        # Fast-path state: flat reg-ready scoreboard (``reg * S + slice``
        # — no per-call list allocations), the per-static-instruction
        # plan cache, and the word -> youngest-store forwarding map for
        # the incremental LSQ window.
        self._plans: dict = {}
        self._scheds: dict = {}
        self._rr: list[int] = [0] * (NUM_EXT_REGS * S)
        self._fwd: dict[int, _StoreEntry] = {}
        self._store_agen: tuple[int, ...] = ()
        self._store_data = 0

    def adopt_warm_state(self, predictor: FrontEndPredictor, hierarchy: MemoryHierarchy) -> None:
        """Adopt functionally-warmed front-end and memory state.

        Statistical sampling (:mod:`repro.timing.sampling`) trains
        branch predictors and caches during fast-forward spans; each
        measurement window then runs on a fresh simulator that adopts
        the shared warmed structures instead of starting cold.  Must be
        called before the first simulated instruction — the fast path
        binds ``predictor``/``hierarchy`` methods into closures lazily
        at run time, so a pre-run swap is safe in both timing modes.
        The geometry-derived fields are recomputed from the adopted
        hierarchy (identical values for same-config instances).
        """
        if self.seq:
            raise RuntimeError("adopt_warm_state must precede the first simulated instruction")
        self.predictor = predictor
        self.hierarchy = hierarchy
        self.line_shift = hierarchy.l1i.config.offset_bits
        tag_shift = hierarchy.l1d.config.tag_shift
        self.index_ready_slice = (tag_shift + self.slice_bits - 1) // self.slice_bits - 1

    @property
    def timeline(self):
        """Per-instruction pipeline timestamps, reconstructed from the
        cycle-event stream (``None`` unless *record_timeline* was set)."""
        if not self._record_timeline:
            return None
        from repro.timing.pipeview import events_to_timeline

        if self._timeline_cache is None or self._timeline_cache[0] != self.events.emitted:
            self._timeline_cache = (self.events.emitted, events_to_timeline(self.events))
        return self._timeline_cache[1]

    # ------------------------------------------------------------------ fetch

    def _fetch(self, record: TraceRecord, is_mem: bool) -> int:
        cfg = self.config
        earliest = self.redirect_at
        if earliest > self.fetch_cycle:
            # Fetch is still blocked on a mispredicted control's
            # resolution (possibly an early §5.3 one): recovery claim.
            self._claim_branch = earliest - self.fetch_cycle
        # RUU occupancy: dispatch slot frees when the (i - ruu)th commits.
        if len(self.commit_ring) >= cfg.ruu_size:
            free_at = self.commit_ring[0] - cfg.dispatch_stage
            if free_at > earliest:
                stall = free_at - max(earliest, self.fetch_cycle)
                if stall > 0:
                    self.stats.ruu_stall_cycles += stall
                    self._claim_ruu = stall
                earliest = free_at
        if is_mem and len(self.mem_commit_ring) >= cfg.lsq_size:
            free_at = self.mem_commit_ring[0] - cfg.dispatch_stage
            if free_at > earliest:
                stall = free_at - max(earliest, self.fetch_cycle)
                if stall > 0:
                    self.stats.lsq_stall_cycles += stall
                    self._claim_lsq = stall
                earliest = free_at
        if earliest > self.fetch_cycle:
            self.fetch_cycle = earliest
            self.fetched_this_cycle = 0
        elif self.fetched_this_cycle >= cfg.fetch_width:
            self.fetch_cycle += 1
            self.fetched_this_cycle = 0
        # Instruction cache: one access per line transition.
        line = record.pc >> self.line_shift
        if line != self.current_fetch_line:
            self.current_fetch_line = line
            result = self.hierarchy.access_instruction(record.pc)
            self.line_ready_at = self.fetch_cycle + (result.latency - self.hierarchy.l1_latency)
        if self.line_ready_at > self.fetch_cycle:
            self._claim_mem += self.line_ready_at - self.fetch_cycle
            self.fetch_cycle = self.line_ready_at
            self.fetched_this_cycle = 0
        self.fetched_this_cycle += 1
        return self.fetch_cycle

    # -------------------------------------------------------------- operands

    def _src_ready(self, regs: tuple[int, ...]) -> list[int]:
        """Per-slice max ready time across the source registers."""
        S = self.num_slices
        out = [0] * S
        for r in regs:
            ready = self.reg_ready[r]
            for s in range(S):
                if ready[s] > out[s]:
                    out[s] = ready[s]
        return out

    def _full_ready(self, regs: tuple[int, ...]) -> int:
        t = 0
        for r in regs:
            m = max(self.reg_ready[r])
            if m > t:
                t = m
        return t

    def _write_dst(self, regs: tuple[int, ...], times) -> None:
        """Record result slice-ready times (scalar = all slices)."""
        if isinstance(times, int):
            times = [times] * self.num_slices
        for r in regs:
            if r == 0:
                continue
            self.reg_ready[r] = list(times)

    # ------------------------------------------------------------ scheduling

    def _schedule_atomic(self, earliest: int, operand_ready: int, latency: int) -> tuple[int, int]:
        """Issue an atomic-operand op; returns (start, complete)."""
        start = self.issue_pools[0].reserve(max(earliest, operand_ready))
        return start, start + latency

    def _schedule_sliced(
        self, earliest: int, src_slice_ready: list[int], klass: OpClass
    ) -> list[int]:
        """Issue each slice of a sliceable op; returns per-slice completion.

        Implements Figure 8: per-slice operand needs, the carry/shift
        chains, and (when the feature is off) in-order slice issue.
        """
        S = self.num_slices
        complete = [0] * S
        order = range(S - 1, -1, -1) if klass is OpClass.SHIFT_RIGHT else range(S)
        prev_start = _NEG_INF
        first_start = _NEG_INF
        for k in order:
            # Input slices needed by slice k.
            if klass in (OpClass.LOGIC, OpClass.ZERO_TEST, OpClass.ARITH):
                ready = src_slice_ready[k]
            elif klass is OpClass.SHIFT_LEFT:
                ready = max(src_slice_ready[: k + 1])
            elif klass is OpClass.SHIFT_RIGHT:
                ready = max(src_slice_ready[k:])
            else:  # pragma: no cover - callers filter classes
                ready = max(src_slice_ready)
            # Intra-instruction chain (carry / shifted-in bits).
            if klass in (OpClass.ARITH, OpClass.SHIFT_LEFT) and k > 0:
                ready = max(ready, complete[k - 1])
            elif klass is OpClass.SHIFT_RIGHT and k < S - 1:
                ready = max(ready, complete[k + 1])
            # Without out-of-order slices, slices enter their pipes in order.
            if not self.ooo_slices and prev_start != _NEG_INF:
                ready = max(ready, prev_start + 1)
            start = self.issue_pools[k].reserve(max(earliest, ready))
            if first_start == _NEG_INF:
                first_start = start
            prev_start = start
            complete[k] = start + 1
        # Inter-slice wait claim: cycles the full result took beyond a
        # one-cycle EX starting when the first slice could (the Figure 8
        # carry/shift chain plus waits on producers' late high slices).
        self._claim_slice += max(complete) - first_start - 1
        return complete

    # ----------------------------------------------------------------- loads

    def _lsd_release(self, load_agen: tuple[int, ...], load_addr: int, dispatch: int, pc: int = 0):
        """When the load may access memory, and any forwarding store.

        Returns ``(release_cycle, forward_store_or_None, relevant_stores)``.
        """
        word = load_addr & ~3
        relevant = [s for s in self.store_window if s.commit > dispatch]
        if not relevant:
            return 0, None, relevant
        self.stats.lsd_searches += 1
        forward = None
        for store in relevant:  # oldest..youngest; keep youngest match
            if (store.addr & ~3) == word:
                forward = store
        if forward is not None:
            return 0, forward, relevant
        if not self.early_lsd:
            # Conventional: every older store's full address must be known.
            return max(s.agen_times[-1] for s in relevant), None, relevant
        # Early disambiguation: each store is ruled out at the first
        # slice (from the low end, bits >= 2) where the addresses
        # differ and both sides have produced that slice.
        release = 0
        early_helped = False
        full = max(s.agen_times[-1] for s in relevant)
        for store in relevant:
            diff = (store.addr ^ load_addr) & ~3
            k = ((diff & -diff).bit_length() - 1) // self.slice_bits  # first differing slice
            t = max(store.agen_times[k], load_agen[k])
            if t < max(store.agen_times[-1], load_agen[-1]):
                early_helped = True
            if t > release:
                release = t
        if release < full and early_helped:
            self.stats.lsd_early_releases += 1
            if self._obs_enabled:
                self.events.emit(
                    EARLY_RELEASE, release, self.seq, pc, {"full_release": full}
                )
        return release, None, relevant

    def _load_data_ready(self, record: TraceRecord, agen: tuple[int, ...], dispatch: int) -> int:
        """Schedule the memory access of a load; returns data-ready cycle."""
        release, forward, relevant = self._lsd_release(agen, record.mem_addr, dispatch, record.pc)
        return self._load_access(record, agen, release, forward, relevant)

    def _load_access(self, record: TraceRecord, agen: tuple[int, ...], release: int, forward, relevant) -> int:
        """Memory-access tail of a load, shared by both timing modes.

        *relevant* is the visible store window (oldest -> youngest);
        the fast path passes its incrementally-pruned deque, the
        reference path the per-load filtered list — the §5.1/PTM/miss
        modelling below is shared verbatim so the two modes can only
        diverge in the release computation, which the lockstep
        cross-check covers.
        """
        cfg = self.config
        stats = self.stats
        addr = record.mem_addr
        a_full = agen[-1]
        if forward is not None:
            stats.store_forwards += 1
            if self.spec_forward:
                # §5.1 extension: forward as soon as this store is the
                # unique partial matcher (all other stores ruled out on
                # their first differing slice) instead of waiting for
                # the full address compare.
                t_unique = max(agen[0], forward.agen_times[0])
                word = addr & ~3
                for store in relevant:
                    if store is forward or (store.addr & ~3) == word:
                        continue
                    diff = (store.addr ^ addr) & ~3
                    k = ((diff & -diff).bit_length() - 1) // self.slice_bits
                    t_unique = max(t_unique, store.agen_times[k], agen[k])
                stats.extra["spec_forwards"] = stats.extra.get("spec_forwards", 0) + 1
                return max(t_unique, forward.data_ready) + 1
            # Forwarding confirms on the full addresses, then moves data.
            return max(a_full, forward.agen_times[-1], forward.data_ready) + 1
        if self.spec_forward and relevant:
            # Mis-speculation model: a lone store that matched the
            # low-slice window but mismatches the full address would
            # have forwarded wrongly — its consumer replays.
            near_matches = [
                s for s in relevant
                if (((s.addr ^ addr) & ~3) & ((1 << self.slice_bits) - 1)) == 0
            ]
            if len(near_matches) == 1:
                stats.extra["spec_forward_mispredicts"] = (
                    stats.extra.get("spec_forward_mispredicts", 0) + 1
                )
                release = max(release, a_full) + cfg.replay_penalty
                self._claim_lsd += cfg.replay_penalty
                if self._obs_enabled:
                    self.events.emit(
                        REPLAY, release, self.seq, record.pc, {"reason": "spec_forward"}
                    )

        if self.ptm:
            # Access may begin once the index bits exist (first agen
            # slice for 16-bit slices, second for 8-bit slices).
            index_ready = agen[self.index_ready_slice]
            if self.sum_addressed:
                # §5.2: the array decoder computes base+offset itself,
                # removing the adder cycle from the index path.
                index_ready -= 1
            if release > index_ready:
                self._claim_lsd += release - index_ready
            access_start = max(index_ready, release)
            bits_avail = (self.index_ready_slice + 1) * self.slice_bits
            tag_bits = bits_avail - self.hierarchy.l1d.config.tag_shift
            outcome, _, correct = partial_tag_lookup(self.hierarchy.l1d, addr, max(1, tag_bits))
            result = self.hierarchy.access_data(addr)
            stats.ptm_accesses += 1
            if result.l1_hit:
                stats.l1d_hits += 1
                if correct:
                    stats.ptm_early_hits += 1
                    return access_start + cfg.l1_latency
                # Way mispredicted: verified against the full tag, the
                # access repeats and mis-scheduled consumers replay.
                stats.ptm_way_mispredicts += 1
                self._claim_ptm += cfg.l1_latency + cfg.replay_penalty
                if self._obs_enabled:
                    self.events.emit(
                        WAY_MISPREDICT,
                        access_start + cfg.l1_latency,
                        self.seq,
                        record.pc,
                        {"addr": addr},
                    )
                return max(a_full, access_start + cfg.l1_latency) + cfg.l1_latency + cfg.replay_penalty
            stats.l1d_misses += 1
            stats.load_replays += 1
            self._claim_mem += (result.latency - cfg.l1_latency) + cfg.replay_penalty
            if self._obs_enabled:
                self.events.emit(
                    REPLAY, access_start + result.latency, self.seq, record.pc,
                    {"reason": "l1d_miss"},
                )
            if outcome.name == "ZERO":
                # Miss known early and non-speculatively: the L2 access
                # overlaps the rest of address generation.
                stats.ptm_early_misses += 1
                return access_start + result.latency + cfg.replay_penalty
            # Partial match that fails the full-tag check: miss is
            # discovered only at verification time.
            return max(a_full, access_start) + result.latency + cfg.replay_penalty

        index_time = a_full - 1 if self.sum_addressed else a_full
        if release > index_time:
            self._claim_lsd += release - index_time
        access_start = max(index_time, release)
        result = self.hierarchy.access_data(addr)
        if result.l1_hit:
            stats.l1d_hits += 1
            return access_start + result.latency
        stats.l1d_misses += 1
        stats.load_replays += 1
        self._claim_mem += (result.latency - cfg.l1_latency) + cfg.replay_penalty
        if self._obs_enabled:
            self.events.emit(
                REPLAY, access_start + result.latency, self.seq, record.pc,
                {"reason": "l1d_miss"},
            )
        return access_start + result.latency + cfg.replay_penalty

    # ------------------------------------------------------------------ main

    def run(
        self,
        trace: Iterable[TraceRecord],
        max_instructions: int | None = None,
        warmup: int = 0,
        watchdog=None,
    ) -> SimStats:
        """Simulate *trace* (optionally truncated) and return the stats.

        The first *warmup* instructions are simulated normally (caches,
        predictors and pipeline state all advance) but excluded from the
        reported counters and the IPC window — the feasible-scale
        equivalent of the paper's 1B-instruction fast-forward.

        An optional :class:`~repro.harness.watchdog.Watchdog` bounds the
        simulation with hard step/wall-clock budgets, raising
        :class:`~repro.harness.errors.RunawayExecution` on breach.

        Dispatches on :attr:`mode`: the fast path replays pre-bound
        per-static-instruction schedulers
        (:func:`repro.timing.fastpath.run_fast`), the reference path is
        :meth:`run_reference` — the golden model the fast path is
        lockstep-checked against.
        """
        if self.mode == "fast":
            from repro.timing.fastpath import run_fast

            return run_fast(self, trace, max_instructions, warmup, watchdog)
        return self.run_reference(trace, max_instructions, warmup, watchdog)

    def run_reference(
        self,
        trace: Iterable[TraceRecord],
        max_instructions: int | None = None,
        warmup: int = 0,
        watchdog=None,
    ) -> SimStats:
        """Reference main loop (golden model for the fast path)."""
        cfg = self.config
        stats = self.stats
        S = self.num_slices
        ev = self.events  # hoisted: None when observability is off
        gp = _guest_collector()
        # Per-PC CPI attribution (guest profiler): pc → component cycles,
        # filled from the same commit deltas the SimStats stack sees.
        prof: dict | None = {} if gp is not None else None
        count = 0
        warm_commit = 0
        if watchdog is not None:
            watchdog.start()
        for record in trace:
            if max_instructions is not None and count >= max_instructions + warmup:
                break
            count += 1
            if watchdog is not None:
                watchdog.poll(count)
            if count == warmup:
                warm_commit = self.last_commit
                fresh = SimStats(config_name=cfg.name)
                self.stats = stats = fresh
                if prof is not None:
                    prof.clear()
            self.seq += 1
            # CPI attribution: fresh stall claims for this instruction.
            self._claim_branch = self._claim_ruu = self._claim_lsq = 0
            self._claim_lsd = self._claim_ptm = self._claim_mem = self._claim_slice = 0
            inst = record.inst
            m = inst.mnemonic
            klass = op_class(m)
            is_mem = klass is OpClass.LOAD or klass is OpClass.STORE

            F = self._fetch(record, is_mem)
            dispatch = F + cfg.dispatch_stage
            earliest_exec = F + cfg.frontend_depth
            srcs = inst.src_regs()
            dsts = inst.dst_regs()

            # ---------------- execute ----------------
            resolve = None  # control-resolution cycle
            if klass is OpClass.NOP or inst.is_nop:
                complete = earliest_exec + 1
                result_times: list[int] | int = complete
            elif klass in (OpClass.LOGIC, OpClass.ARITH, OpClass.SHIFT_LEFT, OpClass.SHIFT_RIGHT):
                if self.sliced:
                    src_ready = self._src_ready(srcs)
                    per_slice = self._schedule_sliced(earliest_exec, src_ready, klass)
                    complete = max(per_slice)
                    result_times = per_slice
                else:
                    start, complete = self._schedule_atomic(
                        earliest_exec, self._full_ready(srcs), cfg.ex_stages
                    )
                    result_times = complete
            elif klass is OpClass.COMPARE and not inst.is_branch:
                # slt family: a subtraction whose defining bit is the
                # sign — sliceable with a borrow chain, but the result
                # (bit 0) exists only once the top slice has computed.
                if self.sliced:
                    per_slice = self._schedule_sliced(
                        earliest_exec, self._src_ready(srcs), OpClass.ARITH
                    )
                    complete = per_slice[-1]
                else:
                    _, complete = self._schedule_atomic(
                        earliest_exec, self._full_ready(srcs), cfg.ex_stages
                    )
                result_times = complete
            elif klass is OpClass.FULL:
                latency = cfg.ex_stages
                if m in ("mult", "multu"):
                    latency = max(cfg.int_mult_lat, cfg.ex_stages)
                elif m in ("div", "divu"):
                    latency = max(cfg.int_div_lat, cfg.ex_stages)
                elif m == "mul.s":
                    latency = max(cfg.fp_mult_lat, cfg.ex_stages)
                elif m == "div.s":
                    latency = max(cfg.fp_div_lat, cfg.ex_stages)
                elif m == "sqrt.s":
                    latency = max(cfg.fp_sqrt_lat, cfg.ex_stages)
                elif m.endswith(".s") or m.endswith(".w"):
                    latency = max(cfg.fp_alu_lat, cfg.ex_stages)
                ready = max(self._full_ready(srcs), earliest_exec)
                if m in ("mult", "multu", "div", "divu"):
                    start = self.multdiv.reserve(ready, latency)
                elif m in ("mul.s", "div.s", "sqrt.s"):
                    start = self.fp_muldiv.reserve(ready, latency)
                else:
                    start = self.issue_pools[0].reserve(ready)
                complete = start + latency
                result_times = complete
            elif klass is OpClass.LOAD:
                agen = self._agen(earliest_exec, srcs)
                data_ready = self._load_data_ready(record, agen, dispatch)
                complete = data_ready
                result_times = data_ready
                stats.loads += 1
            elif klass is OpClass.STORE:
                agen = self._agen(earliest_exec, srcs[:1])
                data_ready = max(self.reg_ready[inst.rt])
                complete = max(agen[-1], data_ready)
                result_times = complete
                stats.stores += 1
            elif inst.is_branch:
                resolve, complete = self._branch(record, earliest_exec, srcs)
                result_times = complete
            elif klass is OpClass.JUMP:
                if m in ("j", "jal"):
                    complete = earliest_exec + 1
                else:  # jr / jalr need the full register value
                    complete = max(earliest_exec, self._full_ready(srcs)) + 1
                resolve = complete
                result_times = complete
            else:  # SYSCALL / break: serialize lightly
                complete = max(earliest_exec, self._full_ready(srcs)) + 1
                result_times = complete

            if dsts:
                if self.narrow and not isinstance(result_times, int):
                    result_times = self._relax_narrow(result_times, record.result)
                self._write_dst(dsts, result_times)

            # ---------------- control redirect ----------------
            mispredicted = False
            if inst.is_control:
                outcome = self.predictor.predict_and_train(record)
                mispredicted = outcome.mispredicted
                if inst.is_branch:
                    stats.branches += 1
                    if outcome.mispredicted:
                        stats.branch_mispredicts += 1
                if outcome.mispredicted:
                    assert resolve is not None
                    self.redirect_at = resolve + 1
                elif outcome.predicted_taken:
                    # Taken control breaks the fetch group.
                    self.fetch_cycle += 1
                    self.fetched_this_cycle = 0

            # ---------------- commit ----------------
            commit = max(complete + cfg.retire_stages, self.last_commit)
            commit = self.commit_pool.reserve(commit)
            if commit < self.last_commit:  # pragma: no cover - pool is monotonic here
                commit = self.last_commit
            # CPI attribution: the commit-to-commit delta is this
            # instruction's share of total cycles; settle it against the
            # claims recorded while it scheduled (waterfall order), the
            # unclaimed remainder being base progress.
            delta = commit - self.last_commit
            if delta:
                if (
                    self._claim_branch | self._claim_ruu | self._claim_lsq
                    | self._claim_lsd | self._claim_ptm | self._claim_mem
                    | self._claim_slice
                ):
                    attribute_delta(
                        stats,
                        delta,
                        (
                            self._claim_branch, self._claim_ruu, self._claim_lsq,
                            self._claim_lsd, self._claim_ptm, self._claim_mem,
                            self._claim_slice,
                        ),
                    )
                else:
                    stats.cpi_base += delta
                if prof is not None:
                    profile_delta(
                        prof,
                        record.pc,
                        delta,
                        (
                            self._claim_branch, self._claim_ruu, self._claim_lsq,
                            self._claim_lsd, self._claim_ptm, self._claim_mem,
                            self._claim_slice,
                        ),
                    )
            self.last_commit = commit
            if self.first_commit is None:
                self.first_commit = commit
            self.commit_ring.append(commit)
            if len(self.commit_ring) > cfg.ruu_size:
                self.commit_ring.popleft()
            if is_mem:
                self.mem_commit_ring.append(commit)
                if len(self.mem_commit_ring) > cfg.lsq_size:
                    self.mem_commit_ring.popleft()
            if klass is OpClass.STORE:
                # The store writes the hierarchy at commit (hidden by
                # the store buffer; latency not charged to commit).
                self.hierarchy.access_data(record.mem_addr)
                entry = _StoreEntry(
                    self.seq, record.mem_addr, agen, data_ready, commit, dispatch
                )
                self.store_window.append(entry)
                if len(self.store_window) > cfg.lsq_size:
                    self.store_window.popleft()

            if ev is not None:
                pc = record.pc
                seq = self.seq
                fetch_args: dict = {"mnemonic": m}
                if self._emit_text:
                    from repro.isa.disassembler import format_instruction

                    fetch_args["text"] = format_instruction(inst, pc=pc)
                ev.emit(FETCH, F, seq, pc, fetch_args)
                ev.emit(DISPATCH, dispatch, seq, pc)
                if isinstance(result_times, list):
                    for k, t in enumerate(result_times):
                        ev.emit(SLICE_COMPLETE, t, seq, pc, {"slice": k})
                else:
                    ev.emit(SLICE_COMPLETE, complete, seq, pc, {"slice": 0})
                ev.emit(
                    COMMIT, commit, seq, pc,
                    {"complete": complete, "mispredicted": mispredicted},
                )
                if seq % CPI_SAMPLE_INTERVAL == 0:
                    # Cumulative component counts as a Perfetto counter
                    # track: slopes show where cycles are going.
                    ev.emit(
                        CPI_SAMPLE, commit, seq, pc,
                        {
                            "base": stats.cpi_base,
                            "branch_recovery": stats.cpi_branch_recovery,
                            "ruu_stall": stats.cpi_ruu_stall,
                            "lsq_stall": stats.cpi_lsq_stall,
                            "lsd_wait": stats.cpi_lsd_wait,
                            "ptm_replay": stats.cpi_ptm_replay,
                            "memory": stats.cpi_memory,
                            "slice_wait": stats.cpi_slice_wait,
                        },
                    )

        stats.instructions = max(0, count - warmup)
        stats.cycles = max(1, self.last_commit - warm_commit) if stats.instructions else 0
        # The per-delta sums telescope to (last_commit - warm_commit);
        # the only shortfall against the reported `cycles` is the
        # max(1, ...) floor on degenerate windows.  Close it so the
        # stack's exact-sum invariant holds unconditionally.
        if stats.instructions:
            attributed = (
                stats.cpi_base + stats.cpi_branch_recovery + stats.cpi_ruu_stall
                + stats.cpi_lsq_stall + stats.cpi_lsd_wait + stats.cpi_ptm_replay
                + stats.cpi_memory + stats.cpi_slice_wait
            )
            if attributed < stats.cycles:
                if prof is not None:
                    # Same correction, charged to the synthetic shortfall
                    # line so the per-PC stacks keep the exact-sum invariant.
                    profile_delta(prof, SHORTFALL_PC, stats.cycles - attributed, ())
                stats.cpi_base += stats.cycles - attributed
        else:
            # Empty measured window (e.g. trace shorter than warmup):
            # cycles is 0, so the stack must be empty too.
            stats.cpi_base = stats.cpi_branch_recovery = stats.cpi_ruu_stall = 0
            stats.cpi_lsq_stall = stats.cpi_lsd_wait = stats.cpi_ptm_replay = 0
            stats.cpi_memory = stats.cpi_slice_wait = 0
            if prof is not None:
                prof.clear()
        if gp is not None:
            gp.add_cycles(prof, stats.cycles)
        return stats

    # ----------------------------------------------------------- sub-models

    def _relax_narrow(self, times: list[int], value: int) -> list[int]:
        """§6 extension: when the result is narrow (its high slices are
        all zeros or all ones, i.e. a sign/zero extension of slice 0),
        consumers of the high slices need only wait for slice 0 — the
        high-order portion is a known constant once the width is known.
        """
        width = self.slice_bits
        low = value & ((1 << width) - 1)
        sign_extended = (low - (1 << width)) & 0xFFFFFFFF if low >> (width - 1) else low
        if value != low and value != sign_extended:
            return times
        t0 = times[0]
        if any(t > t0 for t in times[1:]):
            extra = self.stats.extra
            extra["narrow_relaxations"] = extra.get("narrow_relaxations", 0) + 1
        return [t0] * len(times)

    def _agen(self, earliest: int, base_regs: tuple[int, ...]) -> tuple[int, ...]:
        """Address generation (base + displacement) slice times."""
        if self.sliced:
            src_ready = self._src_ready(base_regs)
            return tuple(self._schedule_sliced(earliest, src_ready, OpClass.ARITH))
        start, complete = self._schedule_atomic(earliest, self._full_ready(base_regs), self.config.ex_stages)
        return (complete,) * self.num_slices if self.num_slices > 1 else (complete,)

    def _branch(self, record: TraceRecord, earliest: int, srcs: tuple[int, ...]) -> tuple[int, int]:
        """Schedule a conditional branch; returns (resolve, complete)."""
        inst = record.inst
        m = inst.mnemonic
        if m in ("beq", "bne") and self.sliced:
            src_ready = self._src_ready(srcs)
            per_slice = self._schedule_sliced(earliest, src_ready, OpClass.ZERO_TEST)
            complete = max(per_slice)
            resolve = complete
            if self.early_branch:
                predicted_taken = self.predictor.gshare.predict(record.pc)
                mispredicted = predicted_taken != record.taken
                if mispredicted and can_resolve_early(m, predicted_taken):
                    diff_slices = slices_containing_difference(
                        record.rs_val, record.rt_val, self.num_slices
                    )
                    if diff_slices:
                        if self.ooo_slices:
                            resolve = min(per_slice[k] for k in diff_slices)
                        else:
                            resolve = per_slice[diff_slices[0]]
                        if resolve < complete:
                            self.stats.early_resolved_mispredicts += 1
                            # §5.3 savings: cycles of recovery the early
                            # resolution avoided.  The branch_recovery
                            # component is *net* of these by
                            # construction (the redirect claim starts at
                            # the early resolve time); reported so the
                            # gross cost is reconstructible.
                            extra = self.stats.extra
                            extra["early_branch_saved_cycles"] = (
                                extra.get("early_branch_saved_cycles", 0)
                                + (complete - resolve)
                            )
            return resolve, complete
        if self.sliced:
            # Sign-testing branches compare via a sliced subtraction;
            # the outcome is known when the top (sign) slice computes.
            per_slice = self._schedule_sliced(earliest, self._src_ready(srcs), OpClass.ARITH)
            return per_slice[-1], per_slice[-1]
        # Atomic machines traverse the full EX pipe.
        start, complete = self._schedule_atomic(earliest, self._full_ready(srcs), self.config.ex_stages)
        return complete, complete


def simulate(
    config: MachineConfig,
    trace: Iterable[TraceRecord],
    max_instructions: int | None = None,
    warmup: int = 0,
    watchdog=None,
    events: EventTrace | None = None,
    mode: str | None = None,
) -> SimStats:
    """Convenience wrapper: run one configuration over a trace.

    When an observability session is active (``--metrics-out`` /
    ``--trace-events`` / ``--profile``), the run is wall-timed, its
    counters accumulate into the session registry, and cycle events
    land in the session ring buffer; with no session the only cost is
    one ``None`` check.  *mode* overrides the ``REPRO_TIMING``
    fast/reference selection for this run.
    """
    from repro.obs.session import active_session

    session = active_session()
    if session is None:
        return TimingSimulator(config, events=events, mode=mode).run(
            trace, max_instructions, warmup=warmup, watchdog=watchdog
        )
    if events is None:
        events = session.events
    from repro.emulator.machine import default_dispatch

    t0 = time.perf_counter()
    sim = TimingSimulator(config, events=events, mode=mode)
    stats = sim.run(trace, max_instructions, warmup=warmup, watchdog=watchdog)
    session.record_run(
        stats,
        time.perf_counter() - t0,
        timing_mode=sim.mode,
        dispatch_mode=default_dispatch(),
    )
    return stats


__all__ = ["TimingSimulator", "simulate"]
