"""Pre-bound fast path for the timing layer.

Mirror of the PR 3 emulator dispatch pattern (:mod:`repro.emulator.dispatch`)
applied to :class:`repro.timing.simulator.TimingSimulator`: the first
time a static instruction is seen, :func:`bind_plan` resolves its op
class, source/destination register tuples, FULL-unit latency and slice
order **once** and captures them in a specialized closure; every later
dynamic occurrence replays the closure instead of re-deriving them.
Three further mechanical optimisations ride on the same plan cache:

* **flat timestamp scoreboard** — register slice-ready times live in
  one preallocated flat list indexed ``reg * S + slice``, so operand
  reads are slice copies instead of nested loops over a list-of-lists,
  and destination writes are in-place stores instead of per-dst
  ``list(...)`` copies;
* **incremental LSQ window** — the store window is pruned once per
  load (``commit <= dispatch`` entries pop from the left; both bounds
  are monotone, so the pruned deque *is* the reference's per-load
  ``[s for s in window if s.commit > dispatch]`` filter) and
  store-to-load forwarding is a word -> youngest-store dict lookup
  instead of a full window scan;
* **shared scheduling kernels** — Figure 8 slice scheduling
  (``_schedule_sliced``), fetch (``_fetch``) and the load memory tail
  (``_load_access``) are the *same methods* the reference loop runs,
  so the modes can only diverge in the binding layer, which the
  lockstep cross-check covers.

The fast path is selected by default; ``REPRO_TIMING=reference`` (or
``TimingSimulator(..., mode="reference")``) runs the original loops,
kept verbatim as the golden models.  :func:`cross_check_timing` and
:func:`cross_check_detailed` run both modes over one trace and raise
:class:`TimingDivergence` on *any* stats or cycle-event mismatch.
"""

from __future__ import annotations

import os

from repro.branch.early import can_resolve_early
from repro.core.slicing import slices_containing_difference
from repro.isa.opclass import OpClass, op_class
from repro.obs.events import (
    COMMIT,
    CPI_SAMPLE,
    DISPATCH,
    EARLY_RELEASE,
    FETCH,
    SLICE_COMPLETE,
    EventTrace,
)
from repro.obs.attribution import attribute_delta
from repro.obs.guestprof import SHORTFALL_PC, profile_delta
from repro.obs.guestprof import active_collector as _guest_collector
from repro.timing.stats import SimStats

#: Environment toggle, mirroring ``REPRO_DISPATCH``.
TIMING_ENV = "REPRO_TIMING"

#: In-process override (set by ``--timing``); wins over the environment
#: so parallel workers can re-apply it via ``_worker_init``.
_override: str | None = None


def _canon(value: str) -> str:
    return "reference" if str(value).strip().lower() in ("reference", "ref", "slow") else "fast"


def default_timing_mode() -> str:
    """Timing-loop implementation selected by ``REPRO_TIMING`` (default ``fast``)."""
    if _override is not None:
        return _override
    return _canon(os.environ.get(TIMING_ENV, "fast"))


def set_timing_mode(mode: str | None) -> str | None:
    """Set (or with ``None`` clear) the in-process mode override."""
    global _override
    _override = None if mode is None else _canon(mode)
    return _override


def timing_mode_override() -> str | None:
    """The current in-process override, for worker re-application."""
    return _override


class TimingDivergence(AssertionError):
    """Fast and reference timing paths disagreed (stats or events)."""


# --------------------------------------------------------------- binding

_ALU_CLASSES = (OpClass.LOGIC, OpClass.ARITH, OpClass.SHIFT_LEFT, OpClass.SHIFT_RIGHT)


def _sched_for(sim, klass):
    """Specialized Figure 8 slice scheduler for one op class.

    Each closure replays :meth:`TimingSimulator._schedule_sliced` for a
    fixed *klass* with the per-slice class branches, the ``order``
    object and the operand-window slice copies resolved at bind time.
    Correctness notes against the reference:

    * for ARITH / SHIFT_LEFT / SHIFT_RIGHT the intra-instruction chain
      forces ``ready >= complete[prev] == prev_start + 1``, so the
      explicit in-order rule is subsumed and one closure serves both
      slice-issue disciplines;
    * the chains also make per-slice completions monotone along the
      iteration order, so ``max(complete)`` is the last computed value;
    * reservation calls hit the per-slice pools in the reference's
      exact order, keeping the bandwidth-pool state bit-identical.
    """
    scheds = sim._scheds
    sched = scheds.get(klass)
    if sched is not None:
        return sched
    S = sim.num_slices
    pools = [p.reserve for p in sim.issue_pools]
    ks = tuple(range(1, S))
    if klass is OpClass.ARITH:
        r0 = pools[0]

        def sched(earliest, sr):
            ready = sr[0]
            if earliest > ready:
                ready = earliest
            start = r0(ready)
            c = start + 1
            out = [c]
            append = out.append
            for k in ks:
                ready = sr[k]
                if c > ready:
                    ready = c
                if earliest > ready:
                    ready = earliest
                c = pools[k](ready) + 1
                append(c)
            sim._claim_slice += c - start - 1
            return out
    elif klass is OpClass.SHIFT_LEFT:
        r0 = pools[0]

        def sched(earliest, sr):
            m = sr[0]
            ready = m if m > earliest else earliest
            start = r0(ready)
            c = start + 1
            out = [c]
            append = out.append
            for k in ks:
                v = sr[k]
                if v > m:
                    m = v
                ready = m
                if c > ready:
                    ready = c
                if earliest > ready:
                    ready = earliest
                c = pools[k](ready) + 1
                append(c)
            sim._claim_slice += c - start - 1
            return out
    elif klass is OpClass.SHIFT_RIGHT:
        top = S - 1
        rt = pools[top]
        ks_down = tuple(range(S - 2, -1, -1))

        def sched(earliest, sr):
            m = sr[top]
            ready = m if m > earliest else earliest
            start = rt(ready)
            c = start + 1
            out = [0] * S
            out[top] = c
            for k in ks_down:
                v = sr[k]
                if v > m:
                    m = v
                ready = m
                if c > ready:
                    ready = c
                if earliest > ready:
                    ready = earliest
                c = pools[k](ready) + 1
                out[k] = c
            sim._claim_slice += c - start - 1
            return out
    else:  # LOGIC / ZERO_TEST: independent slices, no chain
        r0 = pools[0]
        if sim.ooo_slices:
            def sched(earliest, sr):
                ready = sr[0]
                if earliest > ready:
                    ready = earliest
                start = r0(ready)
                c = start + 1
                out = [c]
                append = out.append
                mx = c
                for k in ks:
                    ready = sr[k]
                    if earliest > ready:
                        ready = earliest
                    c = pools[k](ready) + 1
                    if c > mx:
                        mx = c
                    append(c)
                sim._claim_slice += mx - start - 1
                return out
        else:
            def sched(earliest, sr):
                ready = sr[0]
                if earliest > ready:
                    ready = earliest
                prev = r0(ready)
                c = prev + 1
                out = [c]
                append = out.append
                start = prev
                mx = c
                for k in ks:
                    ready = sr[k]
                    if c > ready:  # prev_start + 1 == c for unit-latency slices
                        ready = c
                    if earliest > ready:
                        ready = earliest
                    prev = pools[k](ready)
                    c = prev + 1
                    if c > mx:
                        mx = c
                    append(c)
                sim._claim_slice += mx - start - 1
                return out
    scheds[klass] = sched
    return sched


def bind_plan(sim, inst):
    """Bind one static instruction to its specialized scheduler.

    Returns ``(handler, is_mem, is_control, is_branch, is_store)``;
    ``handler(record, earliest_exec, dispatch)`` performs the execute
    stage (including destination writeback to the flat scoreboard) and
    returns ``(complete, result_times, resolve)`` exactly as the
    reference loop computes them.
    """
    cfg = sim.config
    S = sim.num_slices
    rr = sim._rr
    m = inst.mnemonic
    klass = op_class(m)
    is_mem = klass is OpClass.LOAD or klass is OpClass.STORE
    is_store = klass is OpClass.STORE
    is_branch = inst.is_branch
    is_control = inst.is_control
    srcs = inst.src_regs()
    dsts = inst.dst_regs()
    has_dsts = bool(dsts)
    wdsts = tuple(r * S for r in dsts if r != 0)
    sliced = sim.sliced
    narrow = sim.narrow
    relax = sim._relax_narrow
    reserve0 = sim.issue_pools[0].reserve
    ex_stages = cfg.ex_stages

    # --- source readiness readers over the flat scoreboard ---
    if not srcs:
        def src_ready():
            return [0] * S

        def full_ready():
            return 0
    elif len(srcs) == 1:
        b0 = srcs[0] * S

        def src_ready():
            return rr[b0:b0 + S]

        def full_ready():
            return max(rr[b0:b0 + S])
    else:
        bases = tuple(r * S for r in srcs)

        def src_ready():
            out = rr[bases[0]:bases[0] + S]
            for b in bases[1:]:
                for s in range(S):
                    v = rr[b + s]
                    if v > out[s]:
                        out[s] = v
            return out

        def full_ready():
            return max(max(rr[b:b + S]) for b in bases)

    # --- destination writeback ---
    if len(wdsts) == 1:
        d0 = wdsts[0]

        def write_scalar(t):
            for s in range(S):
                rr[d0 + s] = t

        def write_list(times):
            rr[d0:d0 + S] = times
    else:
        def write_scalar(t):
            for d in wdsts:
                for s in range(S):
                    rr[d + s] = t

        def write_list(times):
            for d in wdsts:
                rr[d:d + S] = times

    # ------------------------------------------------------------- NOP
    if klass is OpClass.NOP or inst.is_nop:
        def handler(record, earliest, dispatch):
            complete = earliest + 1
            if has_dsts:
                write_scalar(complete)
            return complete, complete, None

    # ------------------------------------------------- sliceable ALU ops
    elif klass in _ALU_CLASSES:
        if sliced:
            sched = _sched_for(sim, klass)

            def handler(record, earliest, dispatch):
                per = sched(earliest, src_ready())
                complete = max(per)
                if has_dsts:
                    if narrow:
                        per = relax(per, record.result)
                    write_list(per)
                return complete, per, None
        else:
            def handler(record, earliest, dispatch):
                ready = full_ready()
                if earliest > ready:
                    ready = earliest
                complete = reserve0(ready) + ex_stages
                if has_dsts:
                    write_scalar(complete)
                return complete, complete, None

    # ------------------------------------------------ compare (non-branch)
    elif klass is OpClass.COMPARE and not is_branch:
        if sliced:
            sched = _sched_for(sim, OpClass.ARITH)

            def handler(record, earliest, dispatch):
                per = sched(earliest, src_ready())
                complete = per[-1]
                if has_dsts:
                    write_scalar(complete)
                return complete, complete, None
        else:
            def handler(record, earliest, dispatch):
                ready = full_ready()
                if earliest > ready:
                    ready = earliest
                complete = reserve0(ready) + ex_stages
                if has_dsts:
                    write_scalar(complete)
                return complete, complete, None

    # ------------------------------------------------------ FULL units
    elif klass is OpClass.FULL:
        latency = ex_stages
        if m in ("mult", "multu"):
            latency = max(cfg.int_mult_lat, ex_stages)
        elif m in ("div", "divu"):
            latency = max(cfg.int_div_lat, ex_stages)
        elif m == "mul.s":
            latency = max(cfg.fp_mult_lat, ex_stages)
        elif m == "div.s":
            latency = max(cfg.fp_div_lat, ex_stages)
        elif m == "sqrt.s":
            latency = max(cfg.fp_sqrt_lat, ex_stages)
        elif m.endswith(".s") or m.endswith(".w"):
            latency = max(cfg.fp_alu_lat, ex_stages)
        if m in ("mult", "multu", "div", "divu"):
            unit_reserve = sim.multdiv.reserve
        elif m in ("mul.s", "div.s", "sqrt.s"):
            unit_reserve = sim.fp_muldiv.reserve
        else:
            unit_reserve = None
        if unit_reserve is not None:
            def handler(record, earliest, dispatch, _lat=latency, _res=unit_reserve):
                ready = full_ready()
                if earliest > ready:
                    ready = earliest
                complete = _res(ready, _lat) + _lat
                if has_dsts:
                    write_scalar(complete)
                return complete, complete, None
        else:
            def handler(record, earliest, dispatch, _lat=latency):
                ready = full_ready()
                if earliest > ready:
                    ready = earliest
                complete = reserve0(ready) + _lat
                if has_dsts:
                    write_scalar(complete)
                return complete, complete, None

    # ----------------------------------------------------------- loads
    elif klass is OpClass.LOAD:
        agen_fn = _bind_agen(sim, srcs, src_ready, full_ready)
        load_tail = _bind_load_release(sim)

        def handler(record, earliest, dispatch):
            agen = agen_fn(earliest)
            data_ready = load_tail(record, agen, dispatch)
            sim.stats.loads += 1
            if has_dsts:
                write_scalar(data_ready)
            return data_ready, data_ready, None

    # ---------------------------------------------------------- stores
    elif klass is OpClass.STORE:
        agen_fn = _bind_agen(sim, srcs[:1], None, None)
        rt_base = inst.rt * S  # raw rt, replicating the reference quirk

        def handler(record, earliest, dispatch):
            agen = agen_fn(earliest)
            data_ready = max(rr[rt_base:rt_base + S])
            complete = agen[-1]
            if data_ready > complete:
                complete = data_ready
            sim.stats.stores += 1
            sim._store_agen = agen
            sim._store_data = data_ready
            return complete, complete, None

    # -------------------------------------------------------- branches
    elif is_branch:
        handler = _bind_branch(sim, inst, src_ready, full_ready, write_scalar, has_dsts)

    # ----------------------------------------------------------- jumps
    elif klass is OpClass.JUMP:
        if m in ("j", "jal"):
            def handler(record, earliest, dispatch):
                complete = earliest + 1
                if has_dsts:
                    write_scalar(complete)
                return complete, complete, complete
        else:  # jr / jalr need the full register value
            def handler(record, earliest, dispatch):
                ready = full_ready()
                complete = (earliest if earliest > ready else ready) + 1
                if has_dsts:
                    write_scalar(complete)
                return complete, complete, complete

    # ----------------------------------------------- syscall / serialize
    else:
        def handler(record, earliest, dispatch):
            ready = full_ready()
            complete = (earliest if earliest > ready else ready) + 1
            if has_dsts:
                write_scalar(complete)
            return complete, complete, None

    return handler, is_mem, is_control, is_branch, is_store


def _bind_agen(sim, base_regs, src_ready, full_ready):
    """Address-generation closure over the flat scoreboard
    (replicating :meth:`TimingSimulator._agen`)."""
    S = sim.num_slices
    rr = sim._rr
    reserve0 = sim.issue_pools[0].reserve
    ex_stages = sim.config.ex_stages
    if src_ready is None:
        # Store path: agen over the base register only.
        if base_regs:
            b0 = base_regs[0] * S

            def src_ready():
                return rr[b0:b0 + S]

            def full_ready():
                return max(rr[b0:b0 + S])
        else:  # pragma: no cover - every load/store has a base register
            def src_ready():
                return [0] * S

            def full_ready():
                return 0
    if sim.sliced:
        sched = _sched_for(sim, OpClass.ARITH)

        def agen_fn(earliest):
            return tuple(sched(earliest, src_ready()))
    elif S > 1:
        def agen_fn(earliest):
            ready = full_ready()
            if earliest > ready:
                ready = earliest
            return (reserve0(ready) + ex_stages,) * S
    else:
        def agen_fn(earliest):
            ready = full_ready()
            if earliest > ready:
                ready = earliest
            return (reserve0(ready) + ex_stages,)
    return agen_fn


def _bind_load_release(sim):
    """Incremental load-store-disambiguation closure.

    Equivalence with the reference's per-load filter
    ``[s for s in window if s.commit > dispatch]``:

    * store commits and load dispatch cycles are both monotone
      non-decreasing in program order, so entries failing
      ``commit > dispatch`` once fail it forever — pruning them off the
      left of the deque is permanent;
    * the reference count cap (``len > lsq_size`` pops the oldest) is
      applied identically here, and because the fast window is always a
      suffix of the reference window of equal-or-smaller length, the
      two windows hold exactly the same visible stores when a load
      looks (cap eviction only ever fires when both are full and
      identical);
    * the word -> youngest-store dict may retain popped entries, so a
      hit counts only when the entry is still in the window
      (``seq >= window[0].seq``); any older same-word store was
      appended earlier and therefore popped earlier, so a stale hit
      never masks a live older match.
    """
    window = sim.store_window
    fwd = sim._fwd
    early_lsd = sim.early_lsd
    slice_bits = sim.slice_bits
    load_access = sim._load_access
    events = sim.events

    def load_tail(record, agen, dispatch):
        while window and window[0].commit <= dispatch:
            window.popleft()
        forward = None
        release = 0
        if window:
            stats = sim.stats
            stats.lsd_searches += 1
            addr = record.mem_addr
            word = addr & ~3
            entry = fwd.get(word)
            if entry is not None and entry.seq >= window[0].seq:
                forward = entry
            elif not early_lsd:
                release = max(s.agen_times[-1] for s in window)
            else:
                # Early disambiguation (§5.1): rule each store out at
                # the first differing address slice.
                early_helped = False
                full = 0
                a_full = agen[-1]
                for store in window:
                    s_full = store.agen_times[-1]
                    if s_full > full:
                        full = s_full
                    diff = (store.addr ^ addr) & ~3
                    k = ((diff & -diff).bit_length() - 1) // slice_bits
                    t = store.agen_times[k]
                    if agen[k] > t:
                        t = agen[k]
                    if t < (s_full if s_full > a_full else a_full):
                        early_helped = True
                    if t > release:
                        release = t
                if release < full and early_helped:
                    stats.lsd_early_releases += 1
                    if sim._obs_enabled:
                        events.emit(
                            EARLY_RELEASE, release, sim.seq, record.pc,
                            {"full_release": full},
                        )
        return load_access(record, agen, release, forward, window)

    return load_tail


def _bind_branch(sim, inst, src_ready, full_ready, write_scalar, has_dsts):
    """Conditional-branch closure (replicating :meth:`TimingSimulator._branch`)."""
    m = inst.mnemonic
    reserve0 = sim.issue_pools[0].reserve
    ex_stages = sim.config.ex_stages
    if m in ("beq", "bne") and sim.sliced:
        early_branch = sim.early_branch
        ooo = sim.ooo_slices
        S = sim.num_slices
        gshare_predict = sim.predictor.gshare.predict
        sched = _sched_for(sim, OpClass.ZERO_TEST)

        def handler(record, earliest, dispatch):
            per = sched(earliest, src_ready())
            complete = max(per)
            resolve = complete
            if early_branch:
                predicted_taken = gshare_predict(record.pc)
                if predicted_taken != record.taken and can_resolve_early(m, predicted_taken):
                    diff_slices = slices_containing_difference(
                        record.rs_val, record.rt_val, S
                    )
                    if diff_slices:
                        if ooo:
                            resolve = min(per[k] for k in diff_slices)
                        else:
                            resolve = per[diff_slices[0]]
                        if resolve < complete:
                            stats = sim.stats
                            stats.early_resolved_mispredicts += 1
                            extra = stats.extra
                            extra["early_branch_saved_cycles"] = (
                                extra.get("early_branch_saved_cycles", 0)
                                + (complete - resolve)
                            )
            if has_dsts:  # pragma: no cover - conditional branches have no dsts
                write_scalar(complete)
            return complete, complete, resolve
    elif sim.sliced:
        sched = _sched_for(sim, OpClass.ARITH)

        def handler(record, earliest, dispatch):
            per = sched(earliest, src_ready())
            complete = per[-1]
            if has_dsts:  # pragma: no cover - conditional branches have no dsts
                write_scalar(complete)
            return complete, complete, complete
    else:
        def handler(record, earliest, dispatch):
            ready = full_ready()
            if earliest > ready:
                ready = earliest
            complete = reserve0(ready) + ex_stages
            if has_dsts:  # pragma: no cover - conditional branches have no dsts
                write_scalar(complete)
            return complete, complete, complete
    return handler


# ------------------------------------------------------------- main loop

def run_fast(sim, trace, max_instructions=None, warmup=0, watchdog=None):
    """Fast-mode main loop for :class:`TimingSimulator`.

    Statement-for-statement mirror of
    :meth:`TimingSimulator.run_reference` with the per-record execute
    stage replaced by the pre-bound plan closure and loop-invariant
    attributes hoisted into locals.  Shared scheduling kernels
    (``_fetch``, ``_schedule_sliced``, ``_load_access``, the predictor,
    the attribution waterfall) keep the two modes bit-identical; the
    lockstep cross-check enforces it.
    """
    from repro.timing.simulator import CPI_SAMPLE_INTERVAL, _StoreEntry

    cfg = sim.config
    stats = sim.stats
    ev = sim.events
    gp = _guest_collector()
    prof: dict | None = {} if gp is not None else None
    obs_on = sim._obs_enabled
    emit_text = sim._emit_text
    plans = sim._plans
    plans_get = plans.get
    bind = bind_plan
    fetch = sim._fetch
    predict_and_train = sim.predictor.predict_and_train
    commit_reserve = sim.commit_pool.reserve
    commit_ring = sim.commit_ring
    mem_ring = sim.mem_commit_ring
    window = sim.store_window
    fwd = sim._fwd
    access_data = sim.hierarchy.access_data
    dispatch_stage = cfg.dispatch_stage
    frontend_depth = cfg.frontend_depth
    retire_stages = cfg.retire_stages
    ruu_size = cfg.ruu_size
    lsq_size = cfg.lsq_size

    count = 0
    warm_commit = 0
    if watchdog is not None:
        watchdog.start()
    limit = None if max_instructions is None else max_instructions + warmup
    for record in trace:
        if limit is not None and count >= limit:
            break
        count += 1
        if watchdog is not None:
            watchdog.poll(count)
        if count == warmup:
            warm_commit = sim.last_commit
            stats = SimStats(config_name=cfg.name)
            sim.stats = stats
            if prof is not None:
                prof.clear()
        sim.seq = seq = sim.seq + 1
        sim._claim_branch = sim._claim_ruu = sim._claim_lsq = 0
        sim._claim_lsd = sim._claim_ptm = sim._claim_mem = sim._claim_slice = 0
        inst = record.inst
        plan = plans_get(inst)
        if plan is None:
            plan = plans[inst] = bind(sim, inst)
        handler, is_mem, is_control, is_branch, is_store = plan

        F = fetch(record, is_mem)
        dispatch = F + dispatch_stage

        complete, result_times, resolve = handler(record, F + frontend_depth, dispatch)

        # ---------------- control redirect ----------------
        mispredicted = False
        if is_control:
            outcome = predict_and_train(record)
            mispredicted = outcome.mispredicted
            if is_branch:
                stats.branches += 1
                if mispredicted:
                    stats.branch_mispredicts += 1
            if mispredicted:
                sim.redirect_at = resolve + 1
            elif outcome.predicted_taken:
                sim.fetch_cycle += 1
                sim.fetched_this_cycle = 0

        # ---------------- commit ----------------
        last = sim.last_commit
        commit = complete + retire_stages
        if commit < last:
            commit = last
        commit = commit_reserve(commit)
        if commit < last:  # pragma: no cover - pool is monotonic here
            commit = last
        delta = commit - last
        if delta:
            cb = sim._claim_branch
            cr = sim._claim_ruu
            cq = sim._claim_lsq
            cd = sim._claim_lsd
            cp = sim._claim_ptm
            cm = sim._claim_mem
            cs = sim._claim_slice
            if cb | cr | cq | cd | cp | cm | cs:
                attribute_delta(stats, delta, (cb, cr, cq, cd, cp, cm, cs))
            else:
                stats.cpi_base += delta
            if prof is not None:
                profile_delta(
                    prof, record.pc, delta, (cb, cr, cq, cd, cp, cm, cs)
                )
        sim.last_commit = commit
        if sim.first_commit is None:
            sim.first_commit = commit
        commit_ring.append(commit)
        if len(commit_ring) > ruu_size:
            commit_ring.popleft()
        if is_mem:
            mem_ring.append(commit)
            if len(mem_ring) > lsq_size:
                mem_ring.popleft()
            if is_store:
                addr = record.mem_addr
                access_data(addr)
                entry = _StoreEntry(
                    seq, addr, sim._store_agen, sim._store_data, commit, dispatch
                )
                window.append(entry)
                fwd[addr & ~3] = entry
                if len(window) > lsq_size:
                    window.popleft()

        if obs_on:
            pc = record.pc
            fetch_args: dict = {"mnemonic": inst.mnemonic}
            if emit_text:
                from repro.isa.disassembler import format_instruction

                fetch_args["text"] = format_instruction(inst, pc=pc)
            ev.emit(FETCH, F, seq, pc, fetch_args)
            ev.emit(DISPATCH, dispatch, seq, pc)
            if isinstance(result_times, list):
                for k, t in enumerate(result_times):
                    ev.emit(SLICE_COMPLETE, t, seq, pc, {"slice": k})
            else:
                ev.emit(SLICE_COMPLETE, complete, seq, pc, {"slice": 0})
            ev.emit(
                COMMIT, commit, seq, pc,
                {"complete": complete, "mispredicted": mispredicted},
            )
            if seq % CPI_SAMPLE_INTERVAL == 0:
                ev.emit(
                    CPI_SAMPLE, commit, seq, pc,
                    {
                        "base": stats.cpi_base,
                        "branch_recovery": stats.cpi_branch_recovery,
                        "ruu_stall": stats.cpi_ruu_stall,
                        "lsq_stall": stats.cpi_lsq_stall,
                        "lsd_wait": stats.cpi_lsd_wait,
                        "ptm_replay": stats.cpi_ptm_replay,
                        "memory": stats.cpi_memory,
                        "slice_wait": stats.cpi_slice_wait,
                    },
                )

    stats.instructions = max(0, count - warmup)
    stats.cycles = max(1, sim.last_commit - warm_commit) if stats.instructions else 0
    if stats.instructions:
        attributed = (
            stats.cpi_base + stats.cpi_branch_recovery + stats.cpi_ruu_stall
            + stats.cpi_lsq_stall + stats.cpi_lsd_wait + stats.cpi_ptm_replay
            + stats.cpi_memory + stats.cpi_slice_wait
        )
        if attributed < stats.cycles:
            if prof is not None:
                profile_delta(prof, SHORTFALL_PC, stats.cycles - attributed, ())
            stats.cpi_base += stats.cycles - attributed
    else:
        stats.cpi_base = stats.cpi_branch_recovery = stats.cpi_ruu_stall = 0
        stats.cpi_lsq_stall = stats.cpi_lsd_wait = stats.cpi_ptm_replay = 0
        stats.cpi_memory = stats.cpi_slice_wait = 0
        if prof is not None:
            prof.clear()
    if gp is not None:
        gp.add_cycles(prof, stats.cycles)
    return stats


# ---------------------------------------------------------- cross-checks

def _diff_dicts(label: str, ref: dict, fast: dict) -> None:
    if ref == fast:
        return
    keys = sorted(set(ref) | set(fast))
    diffs = [
        f"  {k}: reference={ref.get(k)!r} fast={fast.get(k)!r}"
        for k in keys
        if ref.get(k) != fast.get(k)
    ]
    raise TimingDivergence(
        f"{label} diverged between timing modes:\n" + "\n".join(diffs)
    )


def _diff_events(ref_events, fast_events) -> None:
    re_, fe = list(ref_events), list(fast_events)
    if re_ == fe:
        return
    for i, (a, b) in enumerate(zip(re_, fe)):
        if a != b:
            raise TimingDivergence(
                f"cycle-event stream diverged at event {i}:\n"
                f"  reference: {a}\n  fast:      {b}"
            )
    raise TimingDivergence(
        f"cycle-event stream lengths diverged: reference={len(re_)} fast={len(fe)}"
    )


def cross_check_timing(config, trace, max_instructions=None, warmup=0):
    """Run both :class:`TimingSimulator` modes over *trace* in lockstep.

    Compares the full ``SimStats`` dict and the complete (unbounded)
    cycle-event streams — every fetch/dispatch/slice/commit timestamp
    of every instruction — and raises :class:`TimingDivergence` on any
    difference.  Returns the fast path's stats on agreement.
    """
    from repro.timing.simulator import TimingSimulator

    records = trace if isinstance(trace, list) else list(trace)
    ref = TimingSimulator(config, events=EventTrace(capacity=None), mode="reference")
    fast = TimingSimulator(config, events=EventTrace(capacity=None), mode="fast")
    ref_stats = ref.run(records, max_instructions, warmup=warmup)
    fast_stats = fast.run(records, max_instructions, warmup=warmup)
    _diff_dicts(f"SimStats[{config.name}]", ref_stats.to_dict(), fast_stats.to_dict())
    _diff_events(ref.events, fast.events)
    return fast_stats


def cross_check_detailed(config, trace, max_instructions=None):
    """Run both :class:`DetailedSimulator` modes over *trace* in lockstep.

    Compares every ``DetailedStats`` field (cycles, issued, forwards,
    the full CPI stack) and raises :class:`TimingDivergence` on any
    difference.  Returns ``(fast_stats, skipped_cycles)``.
    """
    from dataclasses import asdict

    from repro.timing.detailed import DetailedSimulator

    records = trace if isinstance(trace, list) else list(trace)
    ref = DetailedSimulator(config, mode="reference")
    fast = DetailedSimulator(config, mode="fast")
    ref_stats = ref.run(records, max_instructions)
    fast_stats = fast.run(records, max_instructions)
    _diff_dicts(f"DetailedStats[{config.name}]", asdict(ref_stats), asdict(fast_stats))
    return fast_stats, fast._skipped_cycles


__all__ = [
    "TIMING_ENV",
    "TimingDivergence",
    "bind_plan",
    "cross_check_detailed",
    "cross_check_timing",
    "default_timing_mode",
    "run_fast",
    "set_timing_mode",
    "timing_mode_override",
]
