"""Cycle-by-cycle reference simulator (cross-validation model).

The production model in :mod:`repro.timing.simulator` is a one-pass
timestamp simulator: fast, but every structural constraint is encoded
as arithmetic on timestamps.  This module is an independent,
deliberately different implementation — an explicit cycle loop with a
reorder buffer, a scoreboard, per-cycle select, and an event queue —
used by the differential tests to check that the two models agree on
the machinery they share (front end, window occupancy, issue/commit
bandwidth, memory latencies, misprediction redirects).

Scope: atomic-operand configurations (the ideal machine and simple EX
pipelining), plus the *basic* bit-sliced configuration — partial
operand bypassing with in-order slice execution — where the Figure 8
slice rules have a clean cycle-loop formulation (slice *k* of an
instruction issued at cycle *c* executes at *c+k*).  The advanced
features (out-of-order slices, PTM, early LSD/branch) remain exclusive
to the timestamp model.

The two models are not expected to agree cycle-for-cycle (e.g. the
timestamp model idealizes select order), only closely — the tolerance
is asserted by ``tests/test_detailed_crossval.py``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass

from repro.branch.predictor import FrontEndPredictor
from repro.core.config import MachineConfig
from repro.emulator.trace import TraceRecord
from repro.isa.opclass import OpClass, op_class
from repro.isa.registers import NUM_EXT_REGS
from repro.memsys.hierarchy import MemoryHierarchy


@dataclass(slots=True)
class _Entry:
    """One in-flight instruction (a ROB slot)."""

    seq: int
    record: TraceRecord
    klass: OpClass
    fetched_at: int
    dispatched_at: int = -1          # cycle it entered the ROB
    schedulable_at: int = -1         # cycle it may issue (frontend drained)
    issued_at: int = -1
    complete_at: int = -1            # writeback cycle (results bypassable)
    addr_ready_at: int = -1          # memory ops: agen done
    l1_miss: bool = False            # loads: paid latency beyond L1
    committed: bool = False
    # Fast-path plan fields (bound once per static instruction) and the
    # cached operand-enable time (``enable_ver`` < 0 marks it stale; a
    # publish to any source register resets it via the wakeup lists).
    srcs: tuple = ()
    dsts: tuple = ()
    wsrcs: tuple = ()                # registers whose publish re-dirties `enable`
    latency: int = 0
    unit: int = 0                    # 0 none, 1 int mult/div, 2 FP mult/div/sqrt
    enkind: int = 0
    pubkind: int = 0                 # 0 no dsts, 1 whole, 2 ascending, 3 shift-right
    mem: bool = False
    enable: int = -1
    enable_ver: int = -1

    @property
    def is_mem(self) -> bool:
        return self.klass is OpClass.LOAD or self.klass is OpClass.STORE


@dataclass
class DetailedStats:
    """Counters of one detailed-simulation run."""

    config_name: str = ""
    instructions: int = 0
    cycles: int = 0
    issued: int = 0
    branch_mispredicts: int = 0
    store_forwards: int = 0

    # CPI-stack attribution: the cycle loop classifies every cycle into
    # exactly one bucket (same taxonomy as the timestamp model's
    # repro.obs.attribution waterfall), so these sum to ``cycles`` by
    # construction.  Occupancy stalls are folded into the root cause
    # blocking the oldest in-flight instruction, so the ruu/lsq/ptm
    # components stay zero here (those mechanisms are either implicit
    # or out of the reference model's scope).
    cpi_branch_recovery: int = 0
    cpi_ruu_stall: int = 0
    cpi_lsq_stall: int = 0
    cpi_lsd_wait: int = 0
    cpi_ptm_replay: int = 0
    cpi_memory: int = 0
    cpi_slice_wait: int = 0
    cpi_base: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def cpi_stack(self, benchmark: str = ""):
        """This run's cycle decomposition as a checked
        :class:`repro.obs.attribution.CPIStack`."""
        from repro.obs.attribution import CPIStack

        return CPIStack.from_stats(self, benchmark=benchmark).check()


class DetailedSimulator:
    """Explicit cycle loop over the correct-path dynamic stream."""

    def __init__(self, config: MachineConfig, mode: str | None = None) -> None:
        f = config.features
        advanced = (
            f.out_of_order_slices or f.early_branch_resolution
            or f.early_lsq_disambiguation or f.partial_tag_matching
        )
        if config.num_slices != 1 and advanced:
            raise ValueError(
                "the detailed reference models atomic configs and basic "
                "(bypassing-only, in-order-slice) sliced configs"
            )
        self.config = config
        self.sliced = config.num_slices > 1 and f.partial_operand_bypassing
        self.S = config.num_slices
        self.stats = DetailedStats(config_name=config.name)
        self.predictor = FrontEndPredictor(
            config.gshare_entries, config.btb_entries, config.btb_assoc, config.ras_depth
        )
        self.hierarchy = MemoryHierarchy(
            l1_latency=config.l1_latency,
            l2_latency=config.l2_latency,
            memory_latency=config.memory_latency,
        )
        # Scoreboard: extended reg -> per-slice bypassable cycles
        # (atomic configs use a single slice).
        self.reg_ready = [[0] * self.S for _ in range(NUM_EXT_REGS)]
        self.rob: deque[_Entry] = deque()
        self.lsq_count = 0
        # Timing-mode dispatch (same toggle as TimingSimulator): "fast"
        # runs the plan-bound, cycle-skipping loop; "reference" the
        # original walk-every-entry-every-cycle loop it is lockstep
        # cross-checked against.
        if mode is None:
            from repro.timing.fastpath import default_timing_mode

            mode = default_timing_mode()
        self.mode = (
            "reference" if str(mode).strip().lower() in ("reference", "ref", "slow") else "fast"
        )
        self._plans: dict = {}
        self._skipped_cycles = 0     # cycles jumped (not simulated) by the fast loop

    # -------------------------------------------------------------- latency

    def _latency(self, entry: _Entry) -> int:
        cfg = self.config
        m = entry.record.inst.mnemonic
        if m in ("mult", "multu"):
            return max(cfg.int_mult_lat, cfg.ex_stages)
        if m in ("div", "divu"):
            return max(cfg.int_div_lat, cfg.ex_stages)
        if m == "mul.s":
            return max(cfg.fp_mult_lat, cfg.ex_stages)
        if m == "div.s":
            return max(cfg.fp_div_lat, cfg.ex_stages)
        if m == "sqrt.s":
            return max(cfg.fp_sqrt_lat, cfg.ex_stages)
        if m.endswith(".s") or m.endswith(".w"):
            return max(cfg.fp_alu_lat, cfg.ex_stages)
        return cfg.ex_stages

    # ------------------------------------------------------- slice scheduling

    #: Classes whose slices execute one per cycle in order (Figure 8),
    #: slice k at issue+k, when the machine is sliced.
    _PIPELINED = frozenset(
        {OpClass.LOGIC, OpClass.ARITH, OpClass.ZERO_TEST, OpClass.SHIFT_LEFT}
    )

    def _operands_ready(self, entry: _Entry, srcs, cycle: int) -> bool:
        """May the instruction begin execution at *cycle*?

        Atomic machines (and FULL/COMPARE/memory classes) need every
        operand bit; sliced pipelined classes need input slice *k* only
        by the cycle slice *k* executes (issue + k, in-order slices).
        """
        if not self.sliced:
            return all(self.reg_ready[r][0] <= cycle for r in srcs)
        klass = entry.klass
        S = self.S
        if klass in self._PIPELINED or klass is OpClass.COMPARE:
            # Slice k executes at cycle + k.  LOGIC/ARITH/ZERO_TEST and
            # the sliced-subtraction compares consume input slice k
            # there; left shifts additionally pull all lower slices,
            # which in-order execution has already satisfied.
            for r in srcs:
                ready = self.reg_ready[r]
                for k in range(S):
                    if ready[k] > cycle + k:
                        return False
                    if klass is OpClass.SHIFT_LEFT and max(ready[: k + 1]) > cycle + k:
                        return False
            return True
        if klass is OpClass.SHIFT_RIGHT:
            # Slices execute high-first: slice k at cycle + (S-1-k),
            # needing input slices k..S-1.
            for r in srcs:
                ready = self.reg_ready[r]
                for k in range(S):
                    if max(ready[k:]) > cycle + (S - 1 - k):
                        return False
            return True
        if klass is OpClass.LOAD or klass is OpClass.STORE:
            # Address generation is a sliced addition over the base
            # register (srcs[0]); store data gates completion, not
            # issue (matching the timestamp model's split).
            ready = self.reg_ready[srcs[0]]
            for k in range(S):
                if ready[k] > cycle + k:
                    return False
            return True
        # FULL units (mult/div/FP), jumps, syscalls: whole operands.
        return all(max(self.reg_ready[r]) <= cycle for r in srcs)

    def _publish(self, entry: _Entry, cycle: int, whole_at: int | None = None) -> None:
        """Write result availability to the per-slice scoreboard."""
        dsts = entry.record.inst.dst_regs()
        if not dsts:
            return
        S = self.S
        klass = entry.klass
        slice_published = klass in self._PIPELINED or klass is OpClass.SHIFT_RIGHT
        if whole_at is not None or not self.sliced or not slice_published:
            t = whole_at if whole_at is not None else entry.complete_at
            for r in dsts:
                self.reg_ready[r] = [t] * S
            return
        if klass is OpClass.SHIFT_RIGHT:
            times = [cycle + (S - 1 - k) + 1 for k in range(S)]
        else:
            times = [cycle + k + 1 for k in range(S)]
        for r in dsts:
            self.reg_ready[r] = times

    # ------------------------------------------------------------------ run

    def run(self, trace: Iterable[TraceRecord], max_instructions: int | None = None) -> DetailedStats:
        """Dispatch on :attr:`mode` (``REPRO_TIMING`` / constructor)."""
        if self.mode == "fast":
            return self.run_fast(trace, max_instructions)
        return self.run_reference(trace, max_instructions)

    def run_reference(self, trace: Iterable[TraceRecord], max_instructions: int | None = None) -> DetailedStats:
        """Reference cycle loop (golden model for :meth:`run_fast`)."""
        cfg = self.config
        records = list(trace)
        if max_instructions is not None:
            records = records[:max_instructions]
        n = len(records)
        if not n:
            self.stats.cycles = 0
            return self.stats

        cursor = 0                   # next record to fetch
        fetch_blocked_until = 0      # misprediction redirect / I$ miss
        current_line = -1
        line_ready = 0
        committed = 0
        cycle = 0
        seq = 0
        waiting_branch: _Entry | None = None
        multdiv_free = 0
        fp_free = 0
        # Frontend pipe: (entry, schedulable_cycle) FIFO between fetch
        # and dispatch is folded into per-entry timestamps.
        MAX_CYCLES = 400 * n + 10_000  # runaway guard

        while committed < n and cycle < MAX_CYCLES:
            # ---- commit (start of cycle, frees window space) ----
            commits = 0
            while self.rob and commits < cfg.commit_width:
                head = self.rob[0]
                if head.complete_at < 0 or head.complete_at + cfg.retire_stages > cycle:
                    break
                self.rob.popleft()
                if head.is_mem:
                    self.lsq_count -= 1
                    if head.klass is OpClass.STORE:
                        self.hierarchy.access_data(head.record.mem_addr)
                committed += 1
                commits += 1

            # ---- issue/select: oldest-first among ready entries ----
            issued = 0
            for entry in self.rob:
                if issued >= cfg.issue_width:
                    break
                if entry.issued_at >= 0 or entry.schedulable_at > cycle:
                    continue
                record = entry.record
                inst = record.inst
                srcs = inst.src_regs()
                if not self._operands_ready(entry, srcs, cycle):
                    continue
                m = inst.mnemonic
                # Structural: shared non-pipelined units.
                if m in ("mult", "multu", "div", "divu"):
                    if multdiv_free > cycle:
                        continue
                    multdiv_free = cycle + self._latency(entry)
                elif m in ("mul.s", "div.s", "sqrt.s"):
                    if fp_free > cycle:
                        continue
                    fp_free = cycle + self._latency(entry)
                # Memory ordering: loads may not issue past older
                # stores with unresolved addresses (Table 2 rule).
                if entry.klass is OpClass.LOAD:
                    blocked = False
                    forward = None
                    for older in self.rob:
                        if older.seq >= entry.seq:
                            break
                        if older.klass is not OpClass.STORE:
                            continue
                        if older.addr_ready_at < 0 or older.addr_ready_at > cycle:
                            blocked = True
                            break
                        if (older.record.mem_addr & ~3) == (record.mem_addr & ~3):
                            forward = older
                    if blocked:
                        continue
                    entry.issued_at = cycle
                    agen_done = cycle + cfg.ex_stages
                    entry.addr_ready_at = agen_done
                    if forward is not None:
                        # Wait for the store's data too.
                        data_at = max(
                            agen_done,
                            forward.addr_ready_at,
                            *(max(self.reg_ready[r]) for r in forward.record.inst.src_regs()),
                        )
                        entry.complete_at = data_at + 1
                        self.stats.store_forwards += 1
                    else:
                        result = self.hierarchy.access_data(record.mem_addr)
                        extra = 0 if result.l1_hit else cfg.replay_penalty
                        entry.l1_miss = not result.l1_hit
                        entry.complete_at = agen_done + result.latency + extra
                    self._publish(entry, cycle, whole_at=entry.complete_at)
                elif entry.klass is OpClass.STORE:
                    entry.issued_at = cycle
                    entry.addr_ready_at = cycle + cfg.ex_stages
                    # Store completes when address and data are both in.
                    data_at = max(max(self.reg_ready[r]) for r in srcs)
                    entry.complete_at = max(entry.addr_ready_at, data_at)
                else:
                    entry.issued_at = cycle
                    entry.complete_at = cycle + self._latency(entry)
                    self._publish(entry, cycle)
                # Misprediction redirect: the blocking branch's
                # resolution time is now known.
                if entry is waiting_branch:
                    fetch_blocked_until = entry.complete_at + 1
                    waiting_branch = None
                self.stats.issued += 1
                issued += 1

            # ---- fetch + frontend (end of cycle ordering is benign) ----
            fetched = 0
            while (
                cursor < n
                and fetched < cfg.fetch_width
                and cycle >= fetch_blocked_until
                and waiting_branch is None
                and len(self.rob) < cfg.ruu_size
            ):
                record = records[cursor]
                klass = op_class(record.inst.mnemonic)
                is_mem = klass is OpClass.LOAD or klass is OpClass.STORE
                if is_mem and self.lsq_count >= cfg.lsq_size:
                    break
                line = record.pc >> self.hierarchy.l1i.config.offset_bits
                if line != current_line:
                    current_line = line
                    res = self.hierarchy.access_instruction(record.pc)
                    line_ready = cycle + (res.latency - self.hierarchy.l1_latency)
                if line_ready > cycle:
                    break
                entry = _Entry(
                    seq=seq, record=record, klass=klass, fetched_at=cycle,
                    dispatched_at=cycle + cfg.dispatch_stage,
                    schedulable_at=cycle + cfg.frontend_depth,
                )
                seq += 1
                cursor += 1
                fetched += 1
                self.rob.append(entry)
                if is_mem:
                    self.lsq_count += 1
                # Predict in program order (the same training sequence
                # as the timestamp model).  A mispredicted control
                # blocks fetch until it resolves; a predicted-taken one
                # merely breaks the fetch group.
                inst = record.inst
                if inst.is_control:
                    outcome = self.predictor.predict_and_train(record)
                    if outcome.mispredicted:
                        if inst.is_branch:
                            self.stats.branch_mispredicts += 1
                        waiting_branch = entry
                        break
                    if outcome.predicted_taken:
                        break

            self._account_cycle(commits, cycle, fetch_blocked_until, waiting_branch, line_ready)
            cycle += 1

        self.stats.instructions = committed
        self.stats.cycles = cycle
        return self.stats

    # ------------------------------------------------------------ fast path

    def _bind_detailed(self, inst):
        """Resolve one static instruction's scheduling facts once.

        Returns ``(klass, is_mem, is_control, is_branch, srcs, latency,
        unit, enkind)`` — everything the per-cycle loop would otherwise
        re-derive from strings per dynamic occurrence.
        """
        cfg = self.config
        m = inst.mnemonic
        klass = op_class(m)
        is_mem = klass is OpClass.LOAD or klass is OpClass.STORE
        srcs = inst.src_regs()
        dsts = inst.dst_regs()
        latency = cfg.ex_stages
        unit = 0
        if m in ("mult", "multu"):
            latency, unit = max(cfg.int_mult_lat, cfg.ex_stages), 1
        elif m in ("div", "divu"):
            latency, unit = max(cfg.int_div_lat, cfg.ex_stages), 1
        elif m == "mul.s":
            latency, unit = max(cfg.fp_mult_lat, cfg.ex_stages), 2
        elif m == "div.s":
            latency, unit = max(cfg.fp_div_lat, cfg.ex_stages), 2
        elif m == "sqrt.s":
            latency, unit = max(cfg.fp_sqrt_lat, cfg.ex_stages), 2
        elif m.endswith(".s") or m.endswith(".w"):
            latency = max(cfg.fp_alu_lat, cfg.ex_stages)
        # Operand-enable kind: which _operands_ready rule applies
        # (SHIFT_LEFT checked first — it is also in _PIPELINED).
        if not self.sliced:
            enkind = 0
        elif klass is OpClass.SHIFT_LEFT:
            enkind = 2
        elif klass in self._PIPELINED or klass is OpClass.COMPARE:
            enkind = 1
        elif klass is OpClass.SHIFT_RIGHT:
            enkind = 3
        elif is_mem:
            enkind = 4
        else:
            enkind = 5
        # Scoreboard-publish kind (mirrors _publish's slice_published).
        if not dsts:
            pubkind = 0
        elif not self.sliced:
            pubkind = 1
        elif klass in self._PIPELINED:
            pubkind = 2
        elif klass is OpClass.SHIFT_RIGHT:
            pubkind = 3
        else:
            pubkind = 1
        # Registers whose publishes invalidate the cached enable time
        # (kind 4 reads only the base register).
        wsrcs = (srcs[0],) if enkind == 4 and srcs else tuple(set(srcs))
        return (
            klass, is_mem, inst.is_control, inst.is_branch, srcs, dsts,
            latency, unit, enkind, pubkind, wsrcs,
        )

    def _enable_time(self, entry: _Entry) -> int:
        """First cycle *entry*'s operands allow issue.

        Exact inversion of :meth:`_operands_ready`: each rule there is a
        conjunction of ``value <= cycle + offset`` terms, so the enable
        time is the max of ``value - offset`` — and
        ``_operands_ready(e, srcs, c)`` iff ``c >= _enable_time(e)``.
        """
        reg_ready = self.reg_ready
        kind = entry.enkind
        srcs = entry.srcs
        t = 0
        if kind == 0:  # atomic machine: whole registers, single slice
            for r in srcs:
                v = reg_ready[r][0]
                if v > t:
                    t = v
            return t
        S = self.S
        if kind == 1:  # pipelined slices / sliced compare: slice k at +k
            for r in srcs:
                ready = reg_ready[r]
                for k in range(S):
                    v = ready[k] - k
                    if v > t:
                        t = v
            return t
        if kind == 2:  # SHIFT_LEFT: slice k needs input slices 0..k
            for r in srcs:
                ready = reg_ready[r]
                m = ready[0]
                if m > t:
                    t = m
                for k in range(1, S):
                    if ready[k] > m:
                        m = ready[k]
                    v = m - k
                    if v > t:
                        t = v
            return t
        if kind == 3:  # SHIFT_RIGHT: slice k at +(S-1-k), needs slices k..S-1
            for r in srcs:
                ready = reg_ready[r]
                m = ready[S - 1]
                if m > t:
                    t = m
                off = 1
                for k in range(S - 2, -1, -1):
                    if ready[k] > m:
                        m = ready[k]
                    v = m - off
                    if v > t:
                        t = v
                    off += 1
            return t
        if kind == 4:  # load/store agen: base register, slice k at +k
            ready = reg_ready[srcs[0]]
            for k in range(S):
                v = ready[k] - k
                if v > t:
                    t = v
            return t
        for r in srcs:  # kind 5: FULL/jump/syscall need whole operands
            v = max(reg_ready[r])
            if v > t:
                t = v
        return t

    def run_fast(self, trace: Iterable[TraceRecord], max_instructions: int | None = None) -> DetailedStats:
        """Plan-bound cycle loop that skips provably idle cycle spans.

        Three structures replace the reference's full-window scans: a
        *pending* list holding only unissued entries (the issue stage
        walks it instead of the whole ROB), a *stores* deque of
        uncommitted stores (the load-ordering scan walks it instead of
        every older entry), and per-register *wakeup lists* — each
        entry's operand-enable time is cached and re-derived only when
        one of its source registers is published, instead of evaluating
        ``_operands_ready`` per entry per cycle.  When a cycle commits,
        issues and fetches nothing, the loop computes the earliest
        cycle any guard could change state — completion/retire times,
        ``schedulable_at`` and cached enable times, busy functional
        units, issued stores' address-ready times, fetch redirect and
        I-line refill — and jumps there, attributing the whole span
        through ``_account_cycle(weight=span)``.  Every comparison the
        loop and the accounting perform is against a threshold in that
        set, so no state transition can fall inside the gap; the
        lockstep cross-check
        (:func:`repro.timing.fastpath.cross_check_detailed`) enforces
        equality with :meth:`run_reference`.
        """
        cfg = self.config
        records = list(trace)
        if max_instructions is not None:
            records = records[:max_instructions]
        n = len(records)
        if not n:
            self.stats.cycles = 0
            return self.stats
        stats = self.stats
        rob = self.rob
        reg_ready = self.reg_ready
        plans = self._plans
        enable_time = self._enable_time
        account = self._account_cycle
        access_data = self.hierarchy.access_data
        access_instruction = self.hierarchy.access_instruction
        predict_and_train = self.predictor.predict_and_train
        offset_bits = self.hierarchy.l1i.config.offset_bits
        l1_latency = self.hierarchy.l1_latency
        S = self.S
        commit_width = cfg.commit_width
        issue_width = cfg.issue_width
        fetch_width = cfg.fetch_width
        ruu_size = cfg.ruu_size
        lsq_size = cfg.lsq_size
        ex_stages = cfg.ex_stages
        retire = cfg.retire_stages
        replay_penalty = cfg.replay_penalty
        dispatch_stage = cfg.dispatch_stage
        frontend_depth = cfg.frontend_depth
        offs_asc = list(range(1, S + 1))       # pipelined: slice k at +k+1
        offs_desc = list(range(S, 0, -1))      # shift-right: slice k at +(S-1-k)+1
        rS = range(S)

        # Per-run PC-keyed view of the plan cache: within one trace a PC
        # maps to one static instruction, and hashing an int beats
        # hashing the frozen Instruction dataclass on every fetch.
        plans_pc: dict[int, tuple] = {}
        cursor = 0
        fetch_blocked_until = 0
        current_line = -1
        line_ready = 0
        committed = 0
        cycle = 0
        seq = 0
        lsq_count = self.lsq_count
        waiting_branch: _Entry | None = None
        multdiv_free = 0
        fp_free = 0
        issued_total = 0
        base_cycles = 0                  # committing cycles (folded into cpi_base)
        pending: deque[_Entry] = deque() # unissued ROB entries, oldest-first
        dead = 0                         # issued entries lingering mid-`pending`
        stores: deque[_Entry] = deque()  # uncommitted stores, oldest-first
        waiters: list[list[_Entry]] = [[] for _ in range(NUM_EXT_REGS)]
        rob_append = rob.append
        rob_popleft = rob.popleft
        MAX_CYCLES = 400 * n + 10_000    # runaway guard (same as reference)

        while committed < n and cycle < MAX_CYCLES:
            # ---- commit (start of cycle, frees window space) ----
            commits = 0
            while rob and commits < commit_width:
                head = rob[0]
                ca = head.complete_at
                if ca < 0 or ca + retire > cycle:
                    break
                rob_popleft()
                if head.mem:
                    lsq_count -= 1
                    if head.klass is OpClass.STORE:
                        access_data(head.record.mem_addr)
                        stores.popleft()
                committed += 1
                commits += 1

            # ---- issue/select: oldest-first among unissued entries ----
            # ``schedulable_at`` is monotone along fetch order (constant
            # frontend depth), so the first not-yet-schedulable entry
            # ends the scan: everything younger is blocked too.
            issued = 0
            for entry in pending:
                if entry.issued_at >= 0:
                    continue
                if issued >= issue_width:
                    break
                if entry.schedulable_at > cycle:
                    break
                # Wakeup contract: a *clean* unissued entry
                # (``enable_ver >= 0``) is registered in ``waiters[r]``
                # for every r in its ``wsrcs``, so any scoreboard write
                # to r re-dirties it.  Dirty entries need no
                # registration — they recompute before their cache is
                # trusted — so registration happens here, on the paths
                # where a freshly recomputed entry stays unissued.
                fresh = entry.enable_ver < 0
                if fresh:
                    ek = entry.enkind
                    t = 0
                    if ek == 0:  # atomic: whole registers, single slice
                        for r in entry.srcs:
                            v = reg_ready[r][0]
                            if v > t:
                                t = v
                    elif ek == 1:  # pipelined slices: slice k at +k
                        for r in entry.srcs:
                            ready = reg_ready[r]
                            for k in rS:
                                v = ready[k] - k
                                if v > t:
                                    t = v
                    elif ek == 4:  # agen: base register, slice k at +k
                        ready = reg_ready[entry.srcs[0]]
                        for k in rS:
                            v = ready[k] - k
                            if v > t:
                                t = v
                    else:
                        t = enable_time(entry)
                    entry.enable = t
                    entry.enable_ver = 0
                    if t > cycle:
                        for r in entry.wsrcs:
                            waiters[r].append(entry)
                        continue
                elif entry.enable > cycle:
                    continue
                unit = entry.unit
                if unit:
                    if unit == 1:
                        if multdiv_free > cycle:
                            if fresh:
                                for r in entry.wsrcs:
                                    waiters[r].append(entry)
                            continue
                        multdiv_free = cycle + entry.latency
                    else:
                        if fp_free > cycle:
                            if fresh:
                                for r in entry.wsrcs:
                                    waiters[r].append(entry)
                            continue
                        fp_free = cycle + entry.latency
                klass = entry.klass
                if klass is OpClass.LOAD:
                    blocked = False
                    forward = None
                    if stores:
                        eseq = entry.seq
                        word = entry.record.mem_addr & ~3
                        for older in stores:
                            if older.seq >= eseq:
                                break
                            at = older.addr_ready_at
                            if at < 0 or at > cycle:
                                blocked = True
                                break
                            if (older.record.mem_addr & ~3) == word:
                                forward = older
                    if blocked:
                        if fresh:
                            for r in entry.wsrcs:
                                waiters[r].append(entry)
                        continue
                    entry.issued_at = cycle
                    agen_done = cycle + ex_stages
                    entry.addr_ready_at = agen_done
                    if forward is not None:
                        data_at = agen_done
                        if forward.addr_ready_at > data_at:
                            data_at = forward.addr_ready_at
                        for r in forward.srcs:
                            v = max(reg_ready[r])
                            if v > data_at:
                                data_at = v
                        complete = entry.complete_at = data_at + 1
                        stats.store_forwards += 1
                    else:
                        result = access_data(entry.record.mem_addr)
                        entry.l1_miss = not result.l1_hit
                        complete = entry.complete_at = agen_done + result.latency + (
                            0 if result.l1_hit else replay_penalty
                        )
                    if entry.pubkind:  # loads publish the whole value
                        times = [complete] * S
                        for r in entry.dsts:
                            reg_ready[r] = times
                            w = waiters[r]
                            if w:
                                for e in w:
                                    e.enable_ver = -1
                                w.clear()
                elif klass is OpClass.STORE:
                    entry.issued_at = cycle
                    entry.addr_ready_at = cycle + ex_stages
                    data_at = 0
                    for r in entry.srcs:
                        v = max(reg_ready[r])
                        if v > data_at:
                            data_at = v
                    entry.complete_at = (
                        entry.addr_ready_at if entry.addr_ready_at > data_at else data_at
                    )
                else:
                    entry.issued_at = cycle
                    complete = entry.complete_at = cycle + entry.latency
                    pub = entry.pubkind
                    if pub:
                        if pub == 1:
                            times = [complete] * S
                        elif pub == 2:
                            times = [cycle + o for o in offs_asc]
                        else:
                            times = [cycle + o for o in offs_desc]
                        for r in entry.dsts:
                            reg_ready[r] = times
                            w = waiters[r]
                            if w:
                                for e in w:
                                    e.enable_ver = -1
                                w.clear()
                if entry is waiting_branch:
                    fetch_blocked_until = entry.complete_at + 1
                    waiting_branch = None
                issued += 1
            if issued:
                issued_total += issued
                dead += issued
                # Issue is mostly oldest-first, so popping issued heads
                # keeps `pending` clean; the rare mid-list stragglers
                # (a younger entry issued past a stalled older one)
                # trigger a full rebuild only past a small bound.
                while pending and pending[0].issued_at >= 0:
                    pending.popleft()
                    dead -= 1
                if dead >= 16:
                    pending = deque(e for e in pending if e.issued_at < 0)
                    dead = 0

            # ---- fetch + frontend ----
            fetched = 0
            while (
                cursor < n
                and fetched < fetch_width
                and cycle >= fetch_blocked_until
                and waiting_branch is None
                and len(rob) < ruu_size
            ):
                record = records[cursor]
                plan = plans_pc.get(record.pc)
                if plan is None:
                    inst = record.inst
                    plan = plans.get(inst)
                    if plan is None:
                        plan = plans[inst] = self._bind_detailed(inst)
                    plans_pc[record.pc] = plan
                (klass, is_mem, is_control, is_branch, srcs, dsts,
                 latency, unit, enkind, pubkind, wsrcs) = plan
                if is_mem and lsq_count >= lsq_size:
                    break
                line = record.pc >> offset_bits
                if line != current_line:
                    current_line = line
                    res = access_instruction(record.pc)
                    line_ready = cycle + (res.latency - l1_latency)
                if line_ready > cycle:
                    break
                # Positional construction (field order matters) — kwarg
                # packing shows up at this call volume.  New entries
                # start dirty, so no wakeup registration yet: they
                # self-register on their first enable computation.
                entry = _Entry(
                    seq, record, klass, cycle,
                    cycle + dispatch_stage, cycle + frontend_depth,
                    -1, -1, -1, False, False,
                    srcs, dsts, wsrcs, latency, unit, enkind, pubkind, is_mem,
                )
                seq += 1
                cursor += 1
                fetched += 1
                rob_append(entry)
                pending.append(entry)
                if is_mem:
                    lsq_count += 1
                    if klass is OpClass.STORE:
                        stores.append(entry)
                if is_control:
                    outcome = predict_and_train(record)
                    if outcome.mispredicted:
                        if is_branch:
                            stats.branch_mispredicts += 1
                        waiting_branch = entry
                        break
                    if outcome.predicted_taken:
                        break

            if commits or issued or fetched:
                if commits:
                    base_cycles += 1
                else:
                    self.lsq_count = lsq_count
                    account(0, cycle, fetch_blocked_until, waiting_branch, line_ready)
                cycle += 1
                continue

            # ---- idle: jump to the next cycle anything can change ----
            # Candidate thresholds are every value the loop guards above
            # (and _account_cycle) compare the cycle against; the min of
            # those still ahead is the first cycle whose evaluation can
            # differ from this one.
            nxt = MAX_CYCLES
            if rob:
                head_ca = rob[0].complete_at
                if head_ca >= 0:
                    t = head_ca + retire
                    if cycle < t < nxt:
                        nxt = t
                for e in rob:
                    t = e.complete_at
                    if cycle < t < nxt:
                        nxt = t
                    t = e.schedulable_at
                    if cycle < t < nxt:
                        nxt = t
            for e in pending:
                if e.schedulable_at > cycle:
                    break  # monotone: younger entries blocked too
                if e.issued_at >= 0:
                    continue
                if e.enable_ver < 0:
                    e.enable = enable_time(e)
                    e.enable_ver = 0
                    for r in e.wsrcs:  # clean + unissued ⇒ registered
                        waiters[r].append(e)
                t = e.enable
                if cycle < t < nxt:
                    nxt = t
            for e in stores:
                t = e.addr_ready_at
                if cycle < t < nxt:
                    nxt = t
            if cycle < multdiv_free < nxt:
                nxt = multdiv_free
            if cycle < fp_free < nxt:
                nxt = fp_free
            if cycle < fetch_blocked_until < nxt:
                nxt = fetch_blocked_until
            if cycle < line_ready < nxt:
                nxt = line_ready
            span = nxt - cycle
            self.lsq_count = lsq_count
            account(0, cycle, fetch_blocked_until, waiting_branch, line_ready, weight=span)
            self._skipped_cycles += span - 1
            cycle = nxt

        self.lsq_count = lsq_count
        stats.issued += issued_total
        stats.cpi_base += base_cycles
        stats.instructions = committed
        stats.cycles = cycle
        return stats

    # ------------------------------------------------------- CPI accounting

    #: Classes whose extra latency under slicing is the slice chain.
    _SLICEABLE = frozenset(
        {OpClass.LOGIC, OpClass.ARITH, OpClass.ZERO_TEST,
         OpClass.SHIFT_LEFT, OpClass.SHIFT_RIGHT, OpClass.COMPARE}
    )

    def _account_cycle(
        self,
        commits: int,
        cycle: int,
        fetch_blocked_until: int,
        waiting_branch: _Entry | None,
        line_ready: int,
        weight: int = 1,
    ) -> None:
        """Attribute this cycle to exactly one CPI-stack component.

        A committing cycle is base progress.  A zero-commit cycle is
        blamed on whatever blocks the oldest instruction still
        executing: mispredict redirects, I-/D-side memory latency,
        store-address disambiguation, the slice chain, or (residually)
        pipeline fill and execution latency.  One increment per cycle
        keeps the components summing to ``cycles`` exactly.

        *weight* > 1 attributes a span of cycles in one call: the fast
        loop's cycle-skipping uses it for idle gaps whose classification
        is provably constant (every comparison threshold below lies
        outside the span), so the components still sum to ``cycles``.
        """
        stats = self.stats
        if commits:
            stats.cpi_base += weight
            return
        if not self.rob:
            # Empty window: the front end is the bottleneck.
            if waiting_branch is not None or cycle < fetch_blocked_until:
                stats.cpi_branch_recovery += weight
            elif line_ready > cycle:
                stats.cpi_memory += weight
            else:
                stats.cpi_base += weight
            return
        oldest = None
        for entry in self.rob:
            if entry.complete_at < 0 or entry.complete_at > cycle:
                oldest = entry
                break
        if oldest is None:
            stats.cpi_base += weight  # retire-stage drain
            return
        if oldest.issued_at >= 0:
            if oldest.l1_miss:
                stats.cpi_memory += weight
            elif self.sliced and oldest.klass in self._SLICEABLE:
                stats.cpi_slice_wait += weight
            else:
                stats.cpi_base += weight
            return
        if oldest.schedulable_at > cycle:
            stats.cpi_base += weight  # frontend depth
            return
        if oldest.klass is OpClass.LOAD:
            for older in self.rob:
                if older.seq >= oldest.seq:
                    break
                if older.klass is OpClass.STORE and (
                    older.addr_ready_at < 0 or older.addr_ready_at > cycle
                ):
                    stats.cpi_lsd_wait += weight
                    return
        if self.sliced:
            stats.cpi_slice_wait += weight
        else:
            stats.cpi_base += weight


def simulate_detailed(
    config: MachineConfig,
    trace: Iterable[TraceRecord],
    max_instructions: int | None = None,
    mode: str | None = None,
) -> DetailedStats:
    """Convenience wrapper mirroring :func:`repro.timing.simulator.simulate`."""
    return DetailedSimulator(config, mode=mode).run(trace, max_instructions)
