"""Cycle-by-cycle reference simulator (cross-validation model).

The production model in :mod:`repro.timing.simulator` is a one-pass
timestamp simulator: fast, but every structural constraint is encoded
as arithmetic on timestamps.  This module is an independent,
deliberately different implementation — an explicit cycle loop with a
reorder buffer, a scoreboard, per-cycle select, and an event queue —
used by the differential tests to check that the two models agree on
the machinery they share (front end, window occupancy, issue/commit
bandwidth, memory latencies, misprediction redirects).

Scope: atomic-operand configurations (the ideal machine and simple EX
pipelining), plus the *basic* bit-sliced configuration — partial
operand bypassing with in-order slice execution — where the Figure 8
slice rules have a clean cycle-loop formulation (slice *k* of an
instruction issued at cycle *c* executes at *c+k*).  The advanced
features (out-of-order slices, PTM, early LSD/branch) remain exclusive
to the timestamp model.

The two models are not expected to agree cycle-for-cycle (e.g. the
timestamp model idealizes select order), only closely — the tolerance
is asserted by ``tests/test_detailed_crossval.py``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass

from repro.branch.predictor import FrontEndPredictor
from repro.core.config import MachineConfig
from repro.emulator.trace import TraceRecord
from repro.isa.opclass import OpClass, op_class
from repro.isa.registers import NUM_EXT_REGS
from repro.memsys.hierarchy import MemoryHierarchy


@dataclass
class _Entry:
    """One in-flight instruction (a ROB slot)."""

    seq: int
    record: TraceRecord
    klass: OpClass
    fetched_at: int
    dispatched_at: int = -1          # cycle it entered the ROB
    schedulable_at: int = -1         # cycle it may issue (frontend drained)
    issued_at: int = -1
    complete_at: int = -1            # writeback cycle (results bypassable)
    addr_ready_at: int = -1          # memory ops: agen done
    l1_miss: bool = False            # loads: paid latency beyond L1
    committed: bool = False

    @property
    def is_mem(self) -> bool:
        return self.klass is OpClass.LOAD or self.klass is OpClass.STORE


@dataclass
class DetailedStats:
    """Counters of one detailed-simulation run."""

    config_name: str = ""
    instructions: int = 0
    cycles: int = 0
    issued: int = 0
    branch_mispredicts: int = 0
    store_forwards: int = 0

    # CPI-stack attribution: the cycle loop classifies every cycle into
    # exactly one bucket (same taxonomy as the timestamp model's
    # repro.obs.attribution waterfall), so these sum to ``cycles`` by
    # construction.  Occupancy stalls are folded into the root cause
    # blocking the oldest in-flight instruction, so the ruu/lsq/ptm
    # components stay zero here (those mechanisms are either implicit
    # or out of the reference model's scope).
    cpi_branch_recovery: int = 0
    cpi_ruu_stall: int = 0
    cpi_lsq_stall: int = 0
    cpi_lsd_wait: int = 0
    cpi_ptm_replay: int = 0
    cpi_memory: int = 0
    cpi_slice_wait: int = 0
    cpi_base: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def cpi_stack(self, benchmark: str = ""):
        """This run's cycle decomposition as a checked
        :class:`repro.obs.attribution.CPIStack`."""
        from repro.obs.attribution import CPIStack

        return CPIStack.from_stats(self, benchmark=benchmark).check()


class DetailedSimulator:
    """Explicit cycle loop over the correct-path dynamic stream."""

    def __init__(self, config: MachineConfig) -> None:
        f = config.features
        advanced = (
            f.out_of_order_slices or f.early_branch_resolution
            or f.early_lsq_disambiguation or f.partial_tag_matching
        )
        if config.num_slices != 1 and advanced:
            raise ValueError(
                "the detailed reference models atomic configs and basic "
                "(bypassing-only, in-order-slice) sliced configs"
            )
        self.config = config
        self.sliced = config.num_slices > 1 and f.partial_operand_bypassing
        self.S = config.num_slices
        self.stats = DetailedStats(config_name=config.name)
        self.predictor = FrontEndPredictor(
            config.gshare_entries, config.btb_entries, config.btb_assoc, config.ras_depth
        )
        self.hierarchy = MemoryHierarchy(
            l1_latency=config.l1_latency,
            l2_latency=config.l2_latency,
            memory_latency=config.memory_latency,
        )
        # Scoreboard: extended reg -> per-slice bypassable cycles
        # (atomic configs use a single slice).
        self.reg_ready = [[0] * self.S for _ in range(NUM_EXT_REGS)]
        self.rob: deque[_Entry] = deque()
        self.lsq_count = 0

    # -------------------------------------------------------------- latency

    def _latency(self, entry: _Entry) -> int:
        cfg = self.config
        m = entry.record.inst.mnemonic
        if m in ("mult", "multu"):
            return max(cfg.int_mult_lat, cfg.ex_stages)
        if m in ("div", "divu"):
            return max(cfg.int_div_lat, cfg.ex_stages)
        if m == "mul.s":
            return max(cfg.fp_mult_lat, cfg.ex_stages)
        if m == "div.s":
            return max(cfg.fp_div_lat, cfg.ex_stages)
        if m == "sqrt.s":
            return max(cfg.fp_sqrt_lat, cfg.ex_stages)
        if m.endswith(".s") or m.endswith(".w"):
            return max(cfg.fp_alu_lat, cfg.ex_stages)
        return cfg.ex_stages

    # ------------------------------------------------------- slice scheduling

    #: Classes whose slices execute one per cycle in order (Figure 8),
    #: slice k at issue+k, when the machine is sliced.
    _PIPELINED = frozenset(
        {OpClass.LOGIC, OpClass.ARITH, OpClass.ZERO_TEST, OpClass.SHIFT_LEFT}
    )

    def _operands_ready(self, entry: _Entry, srcs, cycle: int) -> bool:
        """May the instruction begin execution at *cycle*?

        Atomic machines (and FULL/COMPARE/memory classes) need every
        operand bit; sliced pipelined classes need input slice *k* only
        by the cycle slice *k* executes (issue + k, in-order slices).
        """
        if not self.sliced:
            return all(self.reg_ready[r][0] <= cycle for r in srcs)
        klass = entry.klass
        S = self.S
        if klass in self._PIPELINED or klass is OpClass.COMPARE:
            # Slice k executes at cycle + k.  LOGIC/ARITH/ZERO_TEST and
            # the sliced-subtraction compares consume input slice k
            # there; left shifts additionally pull all lower slices,
            # which in-order execution has already satisfied.
            for r in srcs:
                ready = self.reg_ready[r]
                for k in range(S):
                    if ready[k] > cycle + k:
                        return False
                    if klass is OpClass.SHIFT_LEFT and max(ready[: k + 1]) > cycle + k:
                        return False
            return True
        if klass is OpClass.SHIFT_RIGHT:
            # Slices execute high-first: slice k at cycle + (S-1-k),
            # needing input slices k..S-1.
            for r in srcs:
                ready = self.reg_ready[r]
                for k in range(S):
                    if max(ready[k:]) > cycle + (S - 1 - k):
                        return False
            return True
        if klass is OpClass.LOAD or klass is OpClass.STORE:
            # Address generation is a sliced addition over the base
            # register (srcs[0]); store data gates completion, not
            # issue (matching the timestamp model's split).
            ready = self.reg_ready[srcs[0]]
            for k in range(S):
                if ready[k] > cycle + k:
                    return False
            return True
        # FULL units (mult/div/FP), jumps, syscalls: whole operands.
        return all(max(self.reg_ready[r]) <= cycle for r in srcs)

    def _publish(self, entry: _Entry, cycle: int, whole_at: int | None = None) -> None:
        """Write result availability to the per-slice scoreboard."""
        dsts = entry.record.inst.dst_regs()
        if not dsts:
            return
        S = self.S
        klass = entry.klass
        slice_published = klass in self._PIPELINED or klass is OpClass.SHIFT_RIGHT
        if whole_at is not None or not self.sliced or not slice_published:
            t = whole_at if whole_at is not None else entry.complete_at
            for r in dsts:
                self.reg_ready[r] = [t] * S
            return
        if klass is OpClass.SHIFT_RIGHT:
            times = [cycle + (S - 1 - k) + 1 for k in range(S)]
        else:
            times = [cycle + k + 1 for k in range(S)]
        for r in dsts:
            self.reg_ready[r] = times

    # ------------------------------------------------------------------ run

    def run(self, trace: Iterable[TraceRecord], max_instructions: int | None = None) -> DetailedStats:
        cfg = self.config
        records = list(trace)
        if max_instructions is not None:
            records = records[:max_instructions]
        n = len(records)
        if not n:
            self.stats.cycles = 0
            return self.stats

        cursor = 0                   # next record to fetch
        fetch_blocked_until = 0      # misprediction redirect / I$ miss
        current_line = -1
        line_ready = 0
        committed = 0
        cycle = 0
        seq = 0
        waiting_branch: _Entry | None = None
        multdiv_free = 0
        fp_free = 0
        # Frontend pipe: (entry, schedulable_cycle) FIFO between fetch
        # and dispatch is folded into per-entry timestamps.
        MAX_CYCLES = 400 * n + 10_000  # runaway guard

        while committed < n and cycle < MAX_CYCLES:
            # ---- commit (start of cycle, frees window space) ----
            commits = 0
            while self.rob and commits < cfg.commit_width:
                head = self.rob[0]
                if head.complete_at < 0 or head.complete_at + cfg.retire_stages > cycle:
                    break
                self.rob.popleft()
                if head.is_mem:
                    self.lsq_count -= 1
                    if head.klass is OpClass.STORE:
                        self.hierarchy.access_data(head.record.mem_addr)
                committed += 1
                commits += 1

            # ---- issue/select: oldest-first among ready entries ----
            issued = 0
            for entry in self.rob:
                if issued >= cfg.issue_width:
                    break
                if entry.issued_at >= 0 or entry.schedulable_at > cycle:
                    continue
                record = entry.record
                inst = record.inst
                srcs = inst.src_regs()
                if not self._operands_ready(entry, srcs, cycle):
                    continue
                m = inst.mnemonic
                # Structural: shared non-pipelined units.
                if m in ("mult", "multu", "div", "divu"):
                    if multdiv_free > cycle:
                        continue
                    multdiv_free = cycle + self._latency(entry)
                elif m in ("mul.s", "div.s", "sqrt.s"):
                    if fp_free > cycle:
                        continue
                    fp_free = cycle + self._latency(entry)
                # Memory ordering: loads may not issue past older
                # stores with unresolved addresses (Table 2 rule).
                if entry.klass is OpClass.LOAD:
                    blocked = False
                    forward = None
                    for older in self.rob:
                        if older.seq >= entry.seq:
                            break
                        if older.klass is not OpClass.STORE:
                            continue
                        if older.addr_ready_at < 0 or older.addr_ready_at > cycle:
                            blocked = True
                            break
                        if (older.record.mem_addr & ~3) == (record.mem_addr & ~3):
                            forward = older
                    if blocked:
                        continue
                    entry.issued_at = cycle
                    agen_done = cycle + cfg.ex_stages
                    entry.addr_ready_at = agen_done
                    if forward is not None:
                        # Wait for the store's data too.
                        data_at = max(
                            agen_done,
                            forward.addr_ready_at,
                            *(max(self.reg_ready[r]) for r in forward.record.inst.src_regs()),
                        )
                        entry.complete_at = data_at + 1
                        self.stats.store_forwards += 1
                    else:
                        result = self.hierarchy.access_data(record.mem_addr)
                        extra = 0 if result.l1_hit else cfg.replay_penalty
                        entry.l1_miss = not result.l1_hit
                        entry.complete_at = agen_done + result.latency + extra
                    self._publish(entry, cycle, whole_at=entry.complete_at)
                elif entry.klass is OpClass.STORE:
                    entry.issued_at = cycle
                    entry.addr_ready_at = cycle + cfg.ex_stages
                    # Store completes when address and data are both in.
                    data_at = max(max(self.reg_ready[r]) for r in srcs)
                    entry.complete_at = max(entry.addr_ready_at, data_at)
                else:
                    entry.issued_at = cycle
                    entry.complete_at = cycle + self._latency(entry)
                    self._publish(entry, cycle)
                # Misprediction redirect: the blocking branch's
                # resolution time is now known.
                if entry is waiting_branch:
                    fetch_blocked_until = entry.complete_at + 1
                    waiting_branch = None
                self.stats.issued += 1
                issued += 1

            # ---- fetch + frontend (end of cycle ordering is benign) ----
            fetched = 0
            while (
                cursor < n
                and fetched < cfg.fetch_width
                and cycle >= fetch_blocked_until
                and waiting_branch is None
                and len(self.rob) < cfg.ruu_size
            ):
                record = records[cursor]
                klass = op_class(record.inst.mnemonic)
                is_mem = klass is OpClass.LOAD or klass is OpClass.STORE
                if is_mem and self.lsq_count >= cfg.lsq_size:
                    break
                line = record.pc >> self.hierarchy.l1i.config.offset_bits
                if line != current_line:
                    current_line = line
                    res = self.hierarchy.access_instruction(record.pc)
                    line_ready = cycle + (res.latency - self.hierarchy.l1_latency)
                if line_ready > cycle:
                    break
                entry = _Entry(
                    seq=seq, record=record, klass=klass, fetched_at=cycle,
                    dispatched_at=cycle + cfg.dispatch_stage,
                    schedulable_at=cycle + cfg.frontend_depth,
                )
                seq += 1
                cursor += 1
                fetched += 1
                self.rob.append(entry)
                if is_mem:
                    self.lsq_count += 1
                # Predict in program order (the same training sequence
                # as the timestamp model).  A mispredicted control
                # blocks fetch until it resolves; a predicted-taken one
                # merely breaks the fetch group.
                inst = record.inst
                if inst.is_control:
                    outcome = self.predictor.predict_and_train(record)
                    if outcome.mispredicted:
                        if inst.is_branch:
                            self.stats.branch_mispredicts += 1
                        waiting_branch = entry
                        break
                    if outcome.predicted_taken:
                        break

            self._account_cycle(commits, cycle, fetch_blocked_until, waiting_branch, line_ready)
            cycle += 1

        self.stats.instructions = committed
        self.stats.cycles = cycle
        return self.stats

    # ------------------------------------------------------- CPI accounting

    #: Classes whose extra latency under slicing is the slice chain.
    _SLICEABLE = frozenset(
        {OpClass.LOGIC, OpClass.ARITH, OpClass.ZERO_TEST,
         OpClass.SHIFT_LEFT, OpClass.SHIFT_RIGHT, OpClass.COMPARE}
    )

    def _account_cycle(
        self,
        commits: int,
        cycle: int,
        fetch_blocked_until: int,
        waiting_branch: _Entry | None,
        line_ready: int,
    ) -> None:
        """Attribute this cycle to exactly one CPI-stack component.

        A committing cycle is base progress.  A zero-commit cycle is
        blamed on whatever blocks the oldest instruction still
        executing: mispredict redirects, I-/D-side memory latency,
        store-address disambiguation, the slice chain, or (residually)
        pipeline fill and execution latency.  One increment per cycle
        keeps the components summing to ``cycles`` exactly.
        """
        stats = self.stats
        if commits:
            stats.cpi_base += 1
            return
        if not self.rob:
            # Empty window: the front end is the bottleneck.
            if waiting_branch is not None or cycle < fetch_blocked_until:
                stats.cpi_branch_recovery += 1
            elif line_ready > cycle:
                stats.cpi_memory += 1
            else:
                stats.cpi_base += 1
            return
        oldest = None
        for entry in self.rob:
            if entry.complete_at < 0 or entry.complete_at > cycle:
                oldest = entry
                break
        if oldest is None:
            stats.cpi_base += 1  # retire-stage drain
            return
        if oldest.issued_at >= 0:
            if oldest.l1_miss:
                stats.cpi_memory += 1
            elif self.sliced and oldest.klass in self._SLICEABLE:
                stats.cpi_slice_wait += 1
            else:
                stats.cpi_base += 1
            return
        if oldest.schedulable_at > cycle:
            stats.cpi_base += 1  # frontend depth
            return
        if oldest.klass is OpClass.LOAD:
            for older in self.rob:
                if older.seq >= oldest.seq:
                    break
                if older.klass is OpClass.STORE and (
                    older.addr_ready_at < 0 or older.addr_ready_at > cycle
                ):
                    stats.cpi_lsd_wait += 1
                    return
        if self.sliced:
            stats.cpi_slice_wait += 1
        else:
            stats.cpi_base += 1


def simulate_detailed(
    config: MachineConfig, trace: Iterable[TraceRecord], max_instructions: int | None = None
) -> DetailedStats:
    """Convenience wrapper mirroring :func:`repro.timing.simulator.simulate`."""
    return DetailedSimulator(config).run(trace, max_instructions)
